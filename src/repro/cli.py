"""Command-line interface: ``python -m repro <command>``.

Four subcommands cover the end-to-end workflow:

* ``trace``     — generate a synthetic trace (JSON Lines) and print its
  summary statistics;
* ``run``       — simulate one (policy, cache) configuration over a trace
  and print JCT / makespan / fairness;
* ``matrix``    — the Figure 12-style grid over policies x caches;
* ``estimate``  — evaluate the closed-form SiloDPerf model for a single
  allocation (a calculator for Eq 4 / Eq 5).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import units
from repro.analysis.tables import render_table
from repro.cluster.hardware import Cluster
from repro.core import perf_model
from repro.sim.runner import CACHES, POLICIES, run_experiment, run_matrix
from repro.workloads.trace import (
    TraceConfig,
    arrival_rate_for_load,
    generate_trace,
)
from repro.workloads.trace_io import load_trace, save_trace, trace_summary


def _add_cluster_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--gpus", type=int, default=100, help="total GPUs (default 100)"
    )
    parser.add_argument(
        "--gpus-per-server", type=int, default=4, help="GPUs per server"
    )
    parser.add_argument(
        "--cache-per-gpu-gb",
        type=float,
        default=368.0,
        help="local cache per GPU in GB (default: Azure V100's 368)",
    )
    parser.add_argument(
        "--egress-gbps",
        type=float,
        default=8.0,
        help="remote-IO egress limit in Gbps",
    )


def _build_cluster(args: argparse.Namespace) -> Cluster:
    servers = max(1, args.gpus // args.gpus_per_server)
    return Cluster.build(
        num_servers=servers,
        gpus_per_server=args.gpus_per_server,
        cache_per_server_mb=args.gpus_per_server
        * units.gb(args.cache_per_gpu_gb),
        remote_io_mbps=units.gbps(args.egress_gbps),
    )


def _cmd_trace(args: argparse.Namespace) -> int:
    config = TraceConfig(
        num_jobs=args.jobs,
        seed=args.seed,
        duration_median_s=args.duration_median_min * 60.0,
        shared_dataset_fraction=args.sharing,
    )
    config.mean_interarrival_s = arrival_rate_for_load(
        config, args.gpus, load=args.load
    )
    jobs = generate_trace(config)
    save_trace(jobs, args.output)
    summary = trace_summary(jobs)
    rows = [{"statistic": k, "value": str(v)} for k, v in summary.items()]
    print(render_table(rows, title=f"trace written to {args.output}"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    cluster = _build_cluster(args)
    jobs = load_trace(args.trace)
    result = run_experiment(
        cluster,
        args.policy,
        args.cache,
        jobs,
        simulator=args.simulator,
        reschedule_interval_s=args.reschedule_s,
    )
    rows = [
        {
            "metric": "average JCT (min)",
            "value": result.average_jct_minutes(),
        },
        {"metric": "makespan (min)", "value": result.makespan_minutes()},
        {
            "metric": "avg fairness ratio",
            "value": result.average_fairness_ratio(),
        },
        {
            "metric": "finished jobs",
            "value": f"{len(result.finished_records())}/{len(result.records)}",
        },
    ]
    print(
        render_table(
            rows, title=f"{args.policy} x {args.cache} on {args.trace}"
        )
    )
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    cluster = _build_cluster(args)
    jobs = load_trace(args.trace)
    results = run_matrix(
        cluster,
        jobs,
        policies=args.policies,
        caches=args.caches,
        reschedule_interval_s=args.reschedule_s,
    )
    rows = [
        {
            "scheduler": policy,
            "cache": cache,
            "avg JCT (min)": result.average_jct_minutes(),
            "makespan (min)": result.makespan_minutes(),
            "fairness": result.average_fairness_ratio(),
        }
        for (policy, cache), result in sorted(results.items())
    ]
    print(render_table(rows, title="scheduler x cache grid"))
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    d_mb = units.gb(args.dataset_gb)
    c_mb = units.gb(args.cache_gb)
    throughput = perf_model.silod_perf(
        args.f_star, args.io_mbps, c_mb, d_mb
    )
    rows = [
        {"quantity": "SiloDPerf (MB/s)", "value": throughput},
        {
            "quantity": "bottleneck",
            "value": "compute"
            if throughput >= args.f_star - 1e-9
            else "data loading",
        },
        {
            "quantity": "cache hit ratio",
            "value": perf_model.hit_ratio(c_mb, d_mb),
        },
        {
            "quantity": "remote IO demand at f* (MB/s)",
            "value": perf_model.remote_io_demand(args.f_star, c_mb, d_mb),
        },
        {
            "quantity": "cache efficiency (MB/s per GB)",
            "value": perf_model.cache_efficiency(args.f_star, d_mb)
            * units.MB_PER_GB,
        },
    ]
    print(render_table(rows, title="SiloDPerf (Eq 4) estimate"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SiloD reproduction: co-designed caching + scheduling",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_trace = sub.add_parser("trace", help="generate a synthetic trace")
    p_trace.add_argument("output", help="output JSONL path")
    p_trace.add_argument("--jobs", type=int, default=300)
    p_trace.add_argument("--seed", type=int, default=42)
    p_trace.add_argument("--gpus", type=int, default=100)
    p_trace.add_argument("--load", type=float, default=1.5)
    p_trace.add_argument("--duration-median-min", type=float, default=360.0)
    p_trace.add_argument("--sharing", type=float, default=0.0)
    p_trace.set_defaults(func=_cmd_trace)

    p_run = sub.add_parser("run", help="simulate one configuration")
    p_run.add_argument("trace", help="trace JSONL path")
    p_run.add_argument("--policy", default="fifo")
    p_run.add_argument("--cache", default="silod")
    p_run.add_argument("--simulator", default="fluid",
                       choices=["fluid", "minibatch"])
    p_run.add_argument("--reschedule-s", type=float, default=1800.0)
    _add_cluster_args(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_matrix = sub.add_parser("matrix", help="run a policy x cache grid")
    p_matrix.add_argument("trace", help="trace JSONL path")
    p_matrix.add_argument("--policies", nargs="+", default=list(POLICIES))
    p_matrix.add_argument("--caches", nargs="+", default=list(CACHES))
    p_matrix.add_argument("--reschedule-s", type=float, default=1800.0)
    _add_cluster_args(p_matrix)
    p_matrix.set_defaults(func=_cmd_matrix)

    p_est = sub.add_parser("estimate", help="evaluate SiloDPerf (Eq 4)")
    p_est.add_argument("--f-star", type=float, required=True,
                       help="compute-bound throughput, MB/s")
    p_est.add_argument("--dataset-gb", type=float, required=True)
    p_est.add_argument("--cache-gb", type=float, default=0.0)
    p_est.add_argument("--io-mbps", type=float, default=0.0)
    p_est.set_defaults(func=_cmd_estimate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
