"""The fault-injection engine shared by both simulators.

:class:`FaultInjector` owns a :class:`~repro.faults.spec.FaultSchedule`
and the churn *state* it induces — how many servers are down, how much
cache-pool capacity is lost, the current bandwidth factor — and turns
each due :class:`~repro.faults.spec.FaultEvent` into a
:class:`FaultEffect` the simulators interpret:

* capacity changes are read back through :meth:`effective_total`, which
  scales a base :class:`~repro.core.resources.ResourceVector` by the
  current churn state;
* ``evict_fraction`` tells the simulator what share of every cache key's
  resident bytes lived on the lost node (even striping) and must be
  invalidated;
* ``preempt_gpus`` tells it how many GPUs' worth of running jobs were on
  the crashed servers; :meth:`select_victims` picks the concrete jobs
  deterministically (sorted job id, greedy fill), so both simulators
  preempt the same jobs for the same schedule.

The injector also emits the schedule-driven half of the fault event
schema (``fault_inject`` plus ``node_down``/``node_up``); the simulators
emit the state-dependent half (``cache_invalidate``, ``job_preempt``,
``job_restart``) as they apply the effects. Recovery semantics: a
recovered server returns with a **cold** disk (its shards were
invalidated at crash time) and recovered cache capacity is likewise
empty — refills pay the §6 delayed-effectiveness cost again.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Dict, List, Optional

from repro.cluster.hardware import Cluster
from repro.core.resources import ResourceVector
from repro.faults.spec import FaultEvent, FaultSchedule
from repro.obs.tracer import NULL_TRACER, Tracer


@dataclasses.dataclass
class FaultEffect:
    """What one applied fault event asks the simulator to do."""

    event: FaultEvent
    #: Fraction of every cache key's resident bytes to invalidate.
    evict_fraction: float = 0.0
    #: GPUs' worth of running jobs to preempt (epoch-granularity restart).
    preempt_gpus: float = 0.0
    #: Target of ``job_preempt``/``job_restart``.
    job_id: Optional[str] = None


class FaultInjector:
    """Drive one simulation through a fault schedule.

    Parameters
    ----------
    schedule:
        The (non-empty) fault schedule; events are consumed in time
        order via :meth:`pop_due`.
    cluster:
        The simulated cluster — provides the per-server GPU and cache
        shares a ``server_crash`` removes, and the base capacities the
        churn state is measured against.
    tracer:
        Structured-event sink; the injector emits one ``fault_inject``
        per applied event plus ``node_down``/``node_up`` for capacity
        changes. Defaults to the free no-op tracer.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        cluster: Cluster,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self._pending = deque(schedule)
        self._tracer = tracer
        self._num_servers = max(1, len(cluster.servers))
        self._gpus_per_server = cluster.total_gpus / self._num_servers
        self._cache_per_server_mb = (
            cluster.total_cache_mb / self._num_servers
        )
        self._base_cache_mb = cluster.total_cache_mb
        #: Churn state.
        self.servers_down = 0
        self.cache_lost_mb = 0.0
        self.bandwidth_factor = 1.0

    # ------------------------------------------------------------------
    # Event-loop interface.
    # ------------------------------------------------------------------

    def next_time(self) -> Optional[float]:
        """Time of the next pending fault, or ``None`` when exhausted."""
        return self._pending[0].time_s if self._pending else None

    def pop_due(self, now_s: float, eps: float = 1e-9) -> List[FaultEvent]:
        """Remove and return every pending fault due at or before now."""
        due: List[FaultEvent] = []
        while self._pending and self._pending[0].time_s <= now_s + eps:
            due.append(self._pending.popleft())
        return due

    # ------------------------------------------------------------------
    # Churn state.
    # ------------------------------------------------------------------

    def current_cache_mb(self) -> float:
        """Cache-pool capacity under the current churn state."""
        return max(
            0.0,
            self._base_cache_mb
            - self.servers_down * self._cache_per_server_mb
            - self.cache_lost_mb,
        )

    def effective_total(self, base: ResourceVector) -> ResourceVector:
        """``base`` scaled by the current churn state.

        GPU and cache losses are absolute (servers hold fixed shares of
        both); bandwidth degradation is multiplicative on the base
        egress limit.
        """
        return ResourceVector(
            gpus=max(
                0.0, base.gpus - self.servers_down * self._gpus_per_server
            ),
            cache_mb=max(
                0.0,
                base.cache_mb
                - self.servers_down * self._cache_per_server_mb
                - self.cache_lost_mb,
            ),
            remote_io_mbps=base.remote_io_mbps * self.bandwidth_factor,
        )

    # ------------------------------------------------------------------
    # Applying faults.
    # ------------------------------------------------------------------

    def apply(self, event: FaultEvent, now_s: float) -> FaultEffect:
        """Update churn state for one event; return the simulator's TODO.

        ``now_s`` is the simulation time the effect takes hold (the
        event's own time in the fluid simulator; the enclosing batch
        boundary in the minibatch emulator) and is the timestamp of the
        emitted events.
        """
        tracer = self._tracer
        if tracer.enabled:
            tracer.fault_inject(
                now_s,
                kind=event.kind,
                target=event.target or "",
                magnitude=event.magnitude,
            )
        effect = FaultEffect(event=event)
        if event.kind == "server_crash":
            n = min(int(event.magnitude), self._num_servers - self.servers_down)
            if n <= 0:
                return effect
            capacity_before = self.current_cache_mb()
            self.servers_down += n
            lost_cache = n * self._cache_per_server_mb
            effect.preempt_gpus = n * self._gpus_per_server
            if capacity_before > 0:
                effect.evict_fraction = min(
                    1.0, lost_cache / capacity_before
                )
            if tracer.enabled:
                tracer.node_down(
                    now_s,
                    kind="server",
                    gpus_lost=n * self._gpus_per_server,
                    cache_lost_mb=lost_cache,
                )
        elif event.kind == "server_recover":
            n = min(int(event.magnitude), self.servers_down)
            if n <= 0:
                return effect
            self.servers_down -= n
            if tracer.enabled:
                tracer.node_up(
                    now_s,
                    kind="server",
                    gpus_restored=n * self._gpus_per_server,
                    cache_restored_mb=n * self._cache_per_server_mb,
                )
        elif event.kind == "cache_loss":
            capacity_before = self.current_cache_mb()
            lost = min(event.magnitude, capacity_before)
            if lost <= 0:
                return effect
            self.cache_lost_mb += lost
            effect.evict_fraction = min(1.0, lost / capacity_before)
            if tracer.enabled:
                tracer.node_down(
                    now_s, kind="cache", gpus_lost=0.0, cache_lost_mb=lost
                )
        elif event.kind == "cache_recover":
            restored = min(event.magnitude, self.cache_lost_mb)
            if restored <= 0:
                return effect
            self.cache_lost_mb -= restored
            if tracer.enabled:
                tracer.node_up(
                    now_s,
                    kind="cache",
                    gpus_restored=0.0,
                    cache_restored_mb=restored,
                )
        elif event.kind == "bandwidth":
            self.bandwidth_factor = event.magnitude
        elif event.kind in ("job_preempt", "job_restart"):
            effect.job_id = event.target
        return effect

    @staticmethod
    def select_victims(
        running_gpus: Dict[str, float], gpus_lost: float
    ) -> List[str]:
        """Pick the running jobs that lived on the crashed servers.

        Neither simulator models physical placement, so victims are
        chosen by a deterministic proxy both agree on: running jobs in
        sorted-id order, greedily, until their GPU grants cover the lost
        capacity. At least one victim is chosen whenever any job runs —
        a crashed server always takes someone's pod with it.
        """
        victims: List[str] = []
        covered = 0.0
        for job_id in sorted(running_gpus):
            if covered >= gpus_lost - 1e-9:
                break
            if running_gpus[job_id] <= 0:
                continue
            victims.append(job_id)
            covered += running_gpus[job_id]
        return victims
