"""repro.faults — fault injection & cluster churn for both simulators.

Two pieces (see ``docs/FAULTS.md`` for the spec format, recovery
semantics, and a worked example):

* :mod:`repro.faults.spec` — :class:`FaultEvent`/:class:`FaultSchedule`
  (declarative churn specs, JSON-loadable) and :func:`generate_churn`
  (a seeded churn model);
* :mod:`repro.faults.injector` — :class:`FaultInjector`, the shared
  engine that turns a schedule into capacity changes, cache
  invalidations, and deterministic job preemptions inside either
  simulator.
"""

from repro.faults.injector import FaultEffect, FaultInjector
from repro.faults.spec import (
    FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
    as_schedule,
    generate_churn,
)

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "FaultEffect",
    "FaultInjector",
    "as_schedule",
    "generate_churn",
]
