"""Fault schedules: declarative cluster-churn specifications.

A fault schedule is a time-ordered list of :class:`FaultEvent` records
describing the churn a simulated cluster experiences: GPU-server crashes
and recoveries, cache-node losses, remote-bandwidth degradations, and
explicit job preempt/restart pairs. The schedule is *declarative* — both
simulators consume the same schedule through
:class:`repro.faults.injector.FaultInjector`, which is what makes
fluid-vs-minibatch runs comparable under identical churn.

Schedules come from two places:

* a small spec — a list of plain dicts (:meth:`FaultSchedule.from_dicts`)
  or a JSON file (:meth:`FaultSchedule.load`); see ``docs/FAULTS.md`` for
  the format and recovery semantics of every kind;
* a seeded churn model (:func:`generate_churn`) producing exponential
  crash/repair processes and bandwidth flaps, deterministic per seed.
"""

from __future__ import annotations

import dataclasses
import json
import random
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro import units

#: Every fault kind a schedule may contain, in documentation order
#: (``docs/FAULTS.md`` documents each under a ``### `kind` `` heading;
#: ``tools/check_obs_docs.py`` enforces that).
FAULT_KINDS = (
    "server_crash",
    "server_recover",
    "cache_loss",
    "cache_recover",
    "bandwidth",
    "job_preempt",
    "job_restart",
)

#: Kinds whose ``target`` is a job id and is therefore mandatory.
_JOB_KINDS = ("job_preempt", "job_restart")


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Attributes
    ----------
    time_s:
        Simulation time at which the fault strikes. The fluid simulator
        applies it analytically at exactly this time; the minibatch
        emulator applies it at the first batch boundary at or after it.
    kind:
        One of :data:`FAULT_KINDS`.
    target:
        The job id for ``job_preempt``/``job_restart``; an optional
        label (e.g. a server name) for the node kinds.
    magnitude:
        Kind-specific size: the number of servers for
        ``server_crash``/``server_recover``; MB of cache-pool capacity
        for ``cache_loss``/``cache_recover``; the new multiplicative
        factor on the base egress limit for ``bandwidth`` (1.0 restores
        full bandwidth); ignored for the job kinds.
    """

    time_s: float
    kind: str
    target: Optional[str] = None
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        if self.time_s < 0:
            raise ValueError(f"{self.kind}: time_s must be >= 0")
        if self.kind in _JOB_KINDS and not self.target:
            raise ValueError(f"{self.kind}: target job id is required")
        if self.kind in ("server_crash", "server_recover"):
            if self.magnitude < 1:
                raise ValueError(f"{self.kind}: magnitude (servers) must be >= 1")
        elif self.kind in ("cache_loss", "cache_recover"):
            if self.magnitude <= 0:
                raise ValueError(f"{self.kind}: magnitude (MB) must be > 0")
        elif self.kind == "bandwidth":
            if self.magnitude <= 0:
                raise ValueError(
                    "bandwidth: magnitude (factor on the base egress) "
                    "must be > 0"
                )

    def to_dict(self) -> dict:
        """A JSON-safe flat representation."""
        out: Dict[str, object] = {"time_s": self.time_s, "kind": self.kind}
        if self.target is not None:
            out["target"] = self.target
        if self.kind not in _JOB_KINDS:
            out["magnitude"] = self.magnitude
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        """Rebuild an event from :meth:`to_dict` output."""
        known = {"time_s", "kind", "target", "magnitude"}
        extra = sorted(set(data) - known)
        if extra:
            raise ValueError(f"unknown fault-spec fields: {extra}")
        return cls(
            time_s=float(data["time_s"]),
            kind=str(data["kind"]),
            target=data.get("target"),
            magnitude=float(data.get("magnitude", 1.0)),
        )


class FaultSchedule:
    """An immutable, time-ordered sequence of :class:`FaultEvent`.

    Events at the same time keep their declared order (a stable sort),
    so a crash-then-recover pair written in that order is applied in
    that order even at identical timestamps. An empty schedule is falsy
    and the simulators treat it exactly like no schedule at all — the
    no-fault path is a strict no-op.
    """

    def __init__(self, events: Sequence[FaultEvent] = ()) -> None:
        indexed = sorted(enumerate(events), key=lambda p: (p[1].time_s, p[0]))
        self.events: tuple = tuple(event for _, event in indexed)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FaultSchedule) and self.events == other.events
        )

    def __repr__(self) -> str:
        return f"FaultSchedule({len(self.events)} events)"

    # ------------------------------------------------------------------
    # Spec conversion.
    # ------------------------------------------------------------------

    @classmethod
    def from_dicts(cls, dicts: Iterable[dict]) -> "FaultSchedule":
        """Build a schedule from a list of plain spec dicts."""
        return cls([FaultEvent.from_dict(d) for d in dicts])

    def to_dicts(self) -> List[dict]:
        """The schedule as a list of plain spec dicts."""
        return [event.to_dict() for event in self.events]

    @classmethod
    def load(cls, path) -> "FaultSchedule":
        """Load a schedule from a JSON file.

        Accepts either a bare list of event dicts or an object with a
        ``"faults"`` key holding that list.
        """
        with open(path) as handle:
            data = json.load(handle)
        if isinstance(data, dict):
            data = data.get("faults", [])
        if not isinstance(data, list):
            raise ValueError(
                f"{path}: expected a JSON list of fault events or an "
                'object with a "faults" list'
            )
        return cls.from_dicts(data)

    def save(self, path) -> None:
        """Write the schedule as a JSON file loadable by :meth:`load`."""
        with open(path, "w") as handle:
            json.dump({"faults": self.to_dicts()}, handle, indent=2)
            handle.write("\n")


def generate_churn(
    seed: int,
    duration_s: float,
    num_servers: int,
    total_cache_mb: float = 0.0,
    crash_interval_s: float = units.hours(6.0),
    repair_time_s: float = 1800.0,
    bandwidth_flap_interval_s: float = units.hours(12.0),
    bandwidth_flap_duration_s: float = units.SECONDS_PER_HOUR,
    bandwidth_floor: float = 0.25,
    cache_loss_interval_s: float = 0.0,
    cache_loss_fraction: float = 0.1,
) -> FaultSchedule:
    """Generate a seed-reproducible churn schedule.

    Three independent Poisson processes (Hu et al.'s characterization of
    large GPU datacenters motivates exponential fault interarrivals):

    * **server churn** — crashes every ``crash_interval_s`` on average,
      each followed by a recovery after an exponential repair time with
      mean ``repair_time_s``;
    * **bandwidth flaps** — every ``bandwidth_flap_interval_s`` on
      average the egress drops to a factor drawn uniformly from
      ``[bandwidth_floor, 1.0)``, restored to ``1.0`` after an
      exponential flap duration;
    * **cache-node losses** — disabled unless ``cache_loss_interval_s``
      is positive; each loss removes ``cache_loss_fraction`` of
      ``total_cache_mb`` and is permanent (no paired recovery), which is
      the harsher case for delayed effectiveness.

    The same ``(seed, parameters)`` always yields the same schedule: the
    three processes draw from independently derived
    :class:`random.Random` streams, so enabling one never perturbs the
    others.
    """
    if duration_s <= 0:
        raise ValueError("duration_s must be > 0")
    if num_servers < 1:
        raise ValueError("num_servers must be >= 1")
    events: List[FaultEvent] = []

    rng_crash = random.Random(f"{seed}:server")
    t = rng_crash.expovariate(1.0 / crash_interval_s)
    while t < duration_s:
        events.append(FaultEvent(time_s=t, kind="server_crash", magnitude=1))
        repair = t + rng_crash.expovariate(1.0 / repair_time_s)
        events.append(
            FaultEvent(time_s=repair, kind="server_recover", magnitude=1)
        )
        t = repair + rng_crash.expovariate(1.0 / crash_interval_s)

    rng_bw = random.Random(f"{seed}:bandwidth")
    t = rng_bw.expovariate(1.0 / bandwidth_flap_interval_s)
    while t < duration_s:
        factor = rng_bw.uniform(bandwidth_floor, 1.0)
        events.append(FaultEvent(time_s=t, kind="bandwidth", magnitude=factor))
        restore = t + rng_bw.expovariate(1.0 / bandwidth_flap_duration_s)
        events.append(
            FaultEvent(time_s=restore, kind="bandwidth", magnitude=1.0)
        )
        t = restore + rng_bw.expovariate(1.0 / bandwidth_flap_interval_s)

    if cache_loss_interval_s > 0 and total_cache_mb > 0:
        rng_cache = random.Random(f"{seed}:cache")
        t = rng_cache.expovariate(1.0 / cache_loss_interval_s)
        while t < duration_s:
            events.append(
                FaultEvent(
                    time_s=t,
                    kind="cache_loss",
                    magnitude=cache_loss_fraction * total_cache_mb,
                )
            )
            t += rng_cache.expovariate(1.0 / cache_loss_interval_s)

    return FaultSchedule(events)


#: Anything the simulators accept as a fault schedule.
ScheduleLike = Union[FaultSchedule, Sequence[FaultEvent], None]


def as_schedule(faults: ScheduleLike) -> Optional[FaultSchedule]:
    """Normalise a ``faults=`` argument; ``None`` for empty/absent."""
    if not faults:
        return None
    if isinstance(faults, FaultSchedule):
        return faults
    return FaultSchedule(list(faults)) or None
