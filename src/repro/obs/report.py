"""Render an event log into the paper-style run summaries.

This is the analysis half of the observability layer: given the events
of one run (typically loaded from the JSONL log), it reconstructs

* the **job lifecycle table** — submit/start/finish, queue delay, JCT,
  epochs per job;
* the **throughput timeline** (Figures 9/11's view) — achieved vs
  compute-bound ("ideal") aggregate throughput and remote-IO usage,
  binned over the run, derived from the per-round ``io_throttle``
  events;
* the **scheduler-decision audit** — rounds, decision latency, grant
  aggregates and GPU churn per policy, from ``sched_decision`` and
  ``alloc_change``;
* the **cache activity table** — admitted/evicted bytes and
  effectiveness promotions per cache key;
* the **fault timeline** — one row per fault-subsystem event
  (``fault_inject``, ``node_down``/``node_up``, ``cache_invalidate``,
  ``job_preempt``/``job_restart``), rendered only when a run was driven
  by a ``repro.faults`` schedule.

``python -m repro report`` prints all of them; each table is also
exposed as plain rows for programmatic use.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import units
from repro.analysis.tables import render_table
from repro.obs import events as ev
from repro.obs.events import Event


def _last_per_round(
    events: Sequence[Event], etype: str
) -> Dict[Tuple[float, Optional[str]], Event]:
    """Latest event per (timestamp, job) — re-decisions override."""
    latest: Dict[Tuple[float, Optional[str]], Event] = {}
    for event in events:
        if event.etype == etype:
            latest[(event.ts_s, event.job_id)] = event
    return latest


def job_table(events: Sequence[Event]) -> List[dict]:
    """Per-job lifecycle rows (submit/start/finish/queue delay/JCT)."""
    jobs: Dict[str, dict] = {}
    for event in events:
        if event.etype == ev.JOB_SUBMIT:
            jobs[event.job_id] = {
                "job": event.job_id,
                "model": event.fields.get("model"),
                "dataset": event.fields.get("dataset"),
                "gpus": event.fields.get("num_gpus"),
                "submit_min": units.seconds_to_minutes(event.ts_s),
                "start_min": None,
                "finish_min": None,
                "queue_min": None,
                "jct_min": None,
                "epochs": 0,
            }
        elif event.etype == ev.JOB_START and event.job_id in jobs:
            row = jobs[event.job_id]
            row["start_min"] = units.seconds_to_minutes(event.ts_s)
            row["queue_min"] = units.seconds_to_minutes(
                float(event.fields.get("queue_delay_s", 0.0))
            )
        elif event.etype == ev.JOB_FINISH and event.job_id in jobs:
            row = jobs[event.job_id]
            row["finish_min"] = units.seconds_to_minutes(event.ts_s)
            row["jct_min"] = units.seconds_to_minutes(
                float(event.fields.get("jct_s", 0.0))
            )
            row["epochs"] = event.fields.get("epochs_done", 0)
    return sorted(jobs.values(), key=lambda r: (r["submit_min"], r["job"]))


def _round_aggregates(
    events: Sequence[Event],
) -> List[Tuple[float, int, float, float, float]]:
    """Per decision round: (ts, running, achieved, ideal, io) MB/s."""
    latest = _last_per_round(events, ev.IO_THROTTLE)
    rounds: Dict[float, List[Event]] = {}
    for (ts, _job), event in latest.items():
        rounds.setdefault(ts, []).append(event)
    out = []
    for ts in sorted(rounds):
        achieved = ideal = io_used = 0.0
        for event in rounds[ts]:
            desired = float(event.fields.get("desired_mbps", 0.0))
            hit = float(event.fields.get("hit_ratio", 0.0))
            demand = float(event.fields.get("demand_mbps", 0.0))
            grant = float(event.fields.get("grant_mbps", 0.0))
            miss = 1.0 - hit
            if miss <= 1e-12:
                rate = desired
            else:
                rate = min(desired, grant / miss)
            achieved += rate
            ideal += desired
            io_used += min(demand, grant)
        out.append((ts, len(rounds[ts]), achieved, ideal, io_used))
    return out


def timeline_rows(
    events: Sequence[Event], bins: int = 24
) -> List[dict]:
    """The Figure 9/11-style timeline, binned into ``bins`` intervals.

    Each row averages the scheduling rounds falling in its time bin:
    running jobs, achieved aggregate throughput, the compute-bound
    ceiling, and remote IO in flight.
    """
    rounds = _round_aggregates(events)
    if not rounds:
        return []
    t_end = max(ts for ts, *_ in rounds)
    span = max(t_end, 1e-9)
    width = span / bins
    buckets: Dict[int, List[Tuple[float, int, float, float, float]]] = {}
    for entry in rounds:
        idx = min(bins - 1, int(entry[0] / width))
        buckets.setdefault(idx, []).append(entry)
    rows = []
    for idx in sorted(buckets):
        group = buckets[idx]
        n = len(group)
        rows.append(
            {
                "t_min": units.seconds_to_minutes((idx + 0.5) * width),
                "running": sum(g[1] for g in group) / n,
                "achieved_mbps": sum(g[2] for g in group) / n,
                "ideal_mbps": sum(g[3] for g in group) / n,
                "remote_io_mbps": sum(g[4] for g in group) / n,
            }
        )
    return rows


def decision_audit(events: Sequence[Event]) -> List[dict]:
    """Per-policy scheduler audit rows from ``sched_decision`` events."""
    by_policy: Dict[Tuple[str, bool], List[Event]] = {}
    for event in events:
        if event.etype == ev.SCHED_DECISION:
            key = (
                str(event.fields.get("policy")),
                bool(event.fields.get("storage_aware")),
            )
            by_policy.setdefault(key, []).append(event)
    changes = sum(1 for e in events if e.etype == ev.ALLOC_CHANGE)
    preemptions = sum(
        1
        for e in events
        if e.etype == ev.ALLOC_CHANGE
        and float(e.fields.get("gpus_after", 0.0)) <= 0.0
        < float(e.fields.get("gpus_before", 0.0))
    )
    rows = []
    for (policy, storage_aware), group in sorted(by_policy.items()):
        n = len(group)
        rows.append(
            {
                "policy": policy,
                "storage_aware": storage_aware,
                "rounds": n,
                "mean_latency_ms": sum(
                    float(e.fields.get("latency_ms", 0.0)) for e in group
                )
                / n,
                "mean_gpus_granted": sum(
                    float(e.fields.get("gpus_granted", 0.0)) for e in group
                )
                / n,
                "mean_io_mbps": sum(
                    float(e.fields.get("io_granted_mbps", 0.0))
                    for e in group
                )
                / n,
                "alloc_changes": changes,
                "preemptions": preemptions,
            }
        )
    return rows


def cache_table(events: Sequence[Event]) -> List[dict]:
    """Per-cache-key activity rows (admissions, evictions, promotions)."""
    keys: Dict[str, dict] = {}

    def _row(key: str) -> dict:
        return keys.setdefault(
            key,
            {
                "key": key,
                "admitted_mb": 0.0,
                "evicted_mb": 0.0,
                "promotions": 0,
                "last_resident_mb": 0.0,
                "last_effective_mb": 0.0,
            },
        )

    for event in events:
        if event.etype == ev.CACHE_ADMIT:
            row = _row(str(event.fields.get("key")))
            row["admitted_mb"] += float(event.fields.get("delta_mb", 0.0))
            row["last_resident_mb"] = float(
                event.fields.get("resident_mb", 0.0)
            )
        elif event.etype == ev.CACHE_EVICT:
            row = _row(str(event.fields.get("key")))
            row["evicted_mb"] += float(event.fields.get("delta_mb", 0.0))
            row["last_resident_mb"] = float(
                event.fields.get("resident_mb", 0.0)
            )
        elif event.etype == ev.PROMOTE_EFFECTIVE:
            row = _row(str(event.fields.get("key")))
            row["promotions"] += 1
            row["last_effective_mb"] = float(
                event.fields.get("effective_mb", 0.0)
            )
    return sorted(keys.values(), key=lambda r: r["key"])


def fault_table(events: Sequence[Event]) -> List[dict]:
    """Chronological fault-timeline rows (``repro.faults`` events).

    One row per fault event, in emission order: what was injected, which
    capacity moved, what was invalidated, and who got preempted. Empty
    when the run had no fault schedule.
    """
    rows = []
    for event in events:
        if event.etype not in ev.FAULT_TYPES:
            continue
        if event.etype == ev.FAULT_INJECT:
            detail = (
                f"kind={event.fields.get('kind')}"
                f" magnitude={event.fields.get('magnitude')}"
            )
            target = event.fields.get("target")
            if target:
                detail += f" target={target}"
        elif event.etype == ev.NODE_DOWN:
            detail = (
                f"{event.fields.get('kind')}:"
                f" -{float(event.fields.get('gpus_lost', 0.0)):g} GPUs,"
                f" -{float(event.fields.get('cache_lost_mb', 0.0)):g} MB cache"
            )
        elif event.etype == ev.NODE_UP:
            detail = (
                f"{event.fields.get('kind')}:"
                f" +{float(event.fields.get('gpus_restored', 0.0)):g} GPUs,"
                f" +{float(event.fields.get('cache_restored_mb', 0.0)):g}"
                " MB cache (cold)"
            )
        elif event.etype == ev.CACHE_INVALIDATE:
            detail = (
                f"key={event.fields.get('key')}"
                f" -{float(event.fields.get('delta_mb', 0.0)):g} MB"
                f" ({event.fields.get('cause')})"
            )
        elif event.etype == ev.JOB_PREEMPT:
            detail = (
                f"reason={event.fields.get('reason')}"
                f" rollback={float(event.fields.get('rollback_mb', 0.0)):g} MB"
                f" epoch={event.fields.get('epoch')}"
            )
        else:  # JOB_RESTART
            detail = f"resumes at epoch {event.fields.get('epoch')}"
        rows.append(
            {
                "t_min": units.seconds_to_minutes(event.ts_s),
                "event": event.etype,
                "job": event.job_id or "-",
                "detail": detail,
            }
        )
    return rows


def slo_table(events: Sequence[Event]) -> List[dict]:
    """Per-deadline-job SLO attainment rows (``report --slo``).

    One row per job that declared a ``deadline_s``, built from the
    ``job_submit`` / ``job_finish`` / ``slo_warn`` / ``slo_violation``
    events alone. ``status`` is ``met`` (finished inside the budget),
    ``warned`` (budget mostly spent but met), ``violated``, or
    ``running`` (no finish in the log and no violation yet). Empty when
    no job carried a deadline.
    """
    jobs: Dict[str, dict] = {}
    for event in events:
        if event.etype == ev.JOB_SUBMIT:
            deadline = event.fields.get("deadline_s")
            if deadline is None:
                continue
            jobs[event.job_id] = {
                "job": event.job_id,
                "deadline_min": units.seconds_to_minutes(float(deadline)),
                "jct_min": None,
                "margin_min": None,
                "status": "running",
            }
        elif event.etype == ev.SLO_WARN and event.job_id in jobs:
            row = jobs[event.job_id]
            if row["status"] == "running":
                row["status"] = "warned"
        elif event.etype == ev.SLO_VIOLATION and event.job_id in jobs:
            jobs[event.job_id]["status"] = "violated"
        elif event.etype == ev.JOB_FINISH and event.job_id in jobs:
            row = jobs[event.job_id]
            jct_min = units.seconds_to_minutes(
                float(event.fields.get("jct_s", 0.0))
            )
            row["jct_min"] = jct_min
            row["margin_min"] = row["deadline_min"] - jct_min
            if row["status"] in ("running", "warned"):
                row["status"] = "met"
    return sorted(jobs.values(), key=lambda r: r["job"])


def slo_attainment(events: Sequence[Event]) -> Optional[dict]:
    """Headline attainment: jobs meeting their deadline / jobs with one."""
    rows = slo_table(events)
    if not rows:
        return None
    met = sum(1 for r in rows if r["status"] == "met")
    return {
        "jobs_with_deadline": len(rows),
        "met": met,
        "violated": sum(1 for r in rows if r["status"] == "violated"),
        "attainment": met / len(rows),
    }


def summary_rows(events: Sequence[Event]) -> List[dict]:
    """Run-level aggregates (the ``run`` command's headline numbers)."""
    jobs = job_table(events)
    finished = [r for r in jobs if r["jct_min"] is not None]
    avg_jct = (
        sum(r["jct_min"] for r in finished) / len(finished)
        if finished
        else math.nan
    )
    makespan = (
        max(r["finish_min"] for r in finished)
        if finished and len(finished) == len(jobs)
        else math.nan
    )
    return [
        {"metric": "jobs submitted", "value": len(jobs)},
        {"metric": "jobs finished", "value": len(finished)},
        {"metric": "average JCT (min)", "value": avg_jct},
        {"metric": "makespan (min)", "value": makespan},
        {
            "metric": "events",
            "value": len(events),
        },
    ]


def render_slo_report(events: Sequence[Event]) -> str:
    """The ``report --slo`` section: attainment headline plus table."""
    rows = slo_table(events)
    if not rows:
        return "SLO attainment: no job declared a deadline_s"
    summary = slo_attainment(events)
    headline = (
        f"SLO attainment: {summary['met']}/{summary['jobs_with_deadline']}"
        f" ({100.0 * summary['attainment']:.1f}%) met,"
        f" {summary['violated']} violated"
    )
    return headline + "\n\n" + render_table(
        rows, title="deadline attainment (times in minutes)"
    )


def render_report(events: Sequence[Event], bins: int = 24) -> str:
    """The full ``python -m repro report`` output for an event log."""
    sections = [
        render_table(summary_rows(events), title="run summary"),
        render_table(
            job_table(events), title="job lifecycle (times in minutes)"
        ),
    ]
    timeline = timeline_rows(events, bins=bins)
    if timeline:
        sections.append(
            render_table(
                timeline,
                title="throughput timeline (Figure 9/11 style, MB/s)",
            )
        )
    audit = decision_audit(events)
    if audit:
        sections.append(
            render_table(audit, title="scheduler decision audit")
        )
    caches = cache_table(events)
    if caches:
        sections.append(render_table(caches, title="cache activity"))
    faults = fault_table(events)
    if faults:
        sections.append(
            render_table(faults, title="fault timeline (repro.faults)")
        )
    return "\n\n".join(sections)


def save_timeline_csv(
    events: Sequence[Event], path: Union[str, "object"], bins: int = 24
) -> None:
    """Write the binned throughput timeline as CSV."""
    import csv

    rows = timeline_rows(events, bins=bins)
    columns = [
        "t_min",
        "running",
        "achieved_mbps",
        "ideal_mbps",
        "remote_io_mbps",
    ]
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        writer.writerows(rows)
