"""Event-log exporters: JSONL, CSV, and Chrome ``trace_event`` JSON.

Three interchange formats cover the consumers we know about:

* **JSONL** (:func:`save_events` / :func:`load_events`) — the archival
  format: one event per line, first line a version header. Lossless
  round trip; ``python -m repro report`` reads it.
* **CSV** (:func:`save_events_csv`) — flat rows for spreadsheet /
  pandas post-processing; per-type fields are carried as one JSON
  column so the column set is stable across event types.
* **Chrome trace** (:func:`chrome_trace` / :func:`save_chrome_trace`) —
  the ``trace_event`` JSON consumed by Perfetto and ``chrome://tracing``:
  job lifecycles become async begin/end spans, everything else becomes
  instant events, and scheduling rounds feed counter tracks (running
  jobs, granted IO) so a run's shape is visible at a glance.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from repro.obs import events as ev
from repro.obs.events import Event

#: JSONL header written as the first line of an event log.
_HEADER = {"v": 1, "kind": "repro-events"}

#: Microseconds per simulated second in Chrome traces.
_US = 1e6


def save_events(
    events: Sequence[Event], path: Union[str, Path]
) -> None:
    """Write an event log as versioned JSON Lines."""
    lines = [json.dumps(_HEADER)]
    lines.extend(json.dumps(event.to_dict()) for event in events)
    Path(path).write_text("\n".join(lines) + "\n")


def load_events(path: Union[str, Path]) -> List[Event]:
    """Read an event log written by :func:`save_events`."""
    events: List[Event] = []
    with open(path) as handle:
        first = handle.readline()
        if not first.strip():
            return events
        header = json.loads(first)
        if header.get("kind") != _HEADER["kind"]:
            raise ValueError(f"{path}: not a repro event log")
        if header.get("v") != _HEADER["v"]:
            raise ValueError(
                f"{path}: unsupported event-log version {header.get('v')}"
            )
        for line in handle:
            line = line.strip()
            if line:
                events.append(Event.from_dict(json.loads(line)))
    return events


def save_events_csv(
    events: Sequence[Event], path: Union[str, Path]
) -> None:
    """Write events as flat CSV (fixed columns + one JSON field column)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["seq", "ts_s", "etype", "job_id", "fields_json"])
        for event in events:
            writer.writerow(
                [
                    event.seq,
                    event.ts_s,
                    event.etype,
                    event.job_id or "",
                    json.dumps(event.fields, sort_keys=True),
                ]
            )


# ----------------------------------------------------------------------
# Chrome trace_event.
# ----------------------------------------------------------------------


def chrome_trace(events: Iterable[Event]) -> dict:
    """Convert an event log to the Chrome ``trace_event`` JSON object.

    The returned dict serialises to a file Perfetto and
    ``chrome://tracing`` open directly. Simulated seconds map to trace
    microseconds, all on one process (``pid`` 0) with one thread lane
    per job (stable by first appearance) plus lane 0 for cluster-scoped
    events.
    """
    trace: List[dict] = []
    lanes: Dict[str, int] = {}

    def _lane(job_id) -> int:
        if job_id is None:
            return 0
        if job_id not in lanes:
            lanes[job_id] = len(lanes) + 1
            trace.append(
                {
                    "ph": "M",
                    "pid": 0,
                    "tid": lanes[job_id],
                    "name": "thread_name",
                    "args": {"name": f"job {job_id}"},
                }
            )
        return lanes[job_id]

    for event in events:
        ts_us = event.ts_s * _US
        tid = _lane(event.job_id)
        args = {"job_id": event.job_id, **event.fields}
        if event.etype == ev.JOB_START:
            trace.append(
                {
                    "ph": "b",
                    "cat": "job",
                    "id": tid,
                    "name": f"job {event.job_id}",
                    "pid": 0,
                    "tid": tid,
                    "ts": ts_us,
                    "args": args,
                }
            )
        elif event.etype == ev.JOB_FINISH:
            trace.append(
                {
                    "ph": "e",
                    "cat": "job",
                    "id": tid,
                    "name": f"job {event.job_id}",
                    "pid": 0,
                    "tid": tid,
                    "ts": ts_us,
                    "args": args,
                }
            )
        else:
            trace.append(
                {
                    "ph": "i",
                    "s": "t" if event.job_id else "g",
                    "cat": event.etype,
                    "name": event.etype,
                    "pid": 0,
                    "tid": tid,
                    "ts": ts_us,
                    "args": args,
                }
            )
        if event.etype == ev.SCHED_DECISION:
            trace.append(
                {
                    "ph": "C",
                    "name": "scheduler",
                    "pid": 0,
                    "tid": 0,
                    "ts": ts_us,
                    "args": {
                        "running_jobs": event.fields.get("num_running", 0),
                        "gpus_granted": event.fields.get("gpus_granted", 0),
                        "io_granted_mbps": event.fields.get(
                            "io_granted_mbps", 0
                        ),
                    },
                }
            )
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def save_chrome_trace(
    events: Iterable[Event], path: Union[str, Path]
) -> None:
    """Write the Chrome ``trace_event`` JSON for an event log."""
    Path(path).write_text(json.dumps(chrome_trace(events)))
