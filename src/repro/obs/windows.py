"""Fixed-capacity sliding-window histograms for the metrics registry.

A :class:`SlidingWindow` keeps the most recent ``capacity`` samples of
one scalar signal, each stamped with the *simulation* time it was
observed at, and answers nearest-rank percentile queries (p50/p95/p99)
over the samples still inside the window. Two eviction rules compose:

* **capacity** — at most ``capacity`` samples are retained; observing
  past the cap drops the oldest sample (a ring buffer);
* **horizon** — when ``horizon_s`` is set, samples older than
  ``ts_s - horizon_s`` relative to the *latest* observation are
  dropped first.

Everything here is pure Python over ``ts_s``-ordered appends, so the
percentiles are a deterministic function of the simulated run: the same
event log produces the same snapshot with or without numpy
(``REPRO_NO_NUMPY=1``) and across reruns. The one deliberately
non-deterministic *signal* is decision latency, whose samples are
wall-clock milliseconds — the window machinery is still deterministic,
the values are not (same carve-out as ``sched_decision.latency_ms``;
see ``docs/OBSERVABILITY.md``).

The registry (``repro.obs.registry``) owns the well-known windows fed
by the typed tracer helpers; :data:`WINDOW_NAMES` is the code half of
the doc sync in ``tools/check_obs_docs.py``.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, List, Optional, Tuple

#: Default sample capacity of one window.
DEFAULT_CAPACITY = 512

#: The well-known windows the typed tracer helpers feed, with the unit
#: each carries. Order is documentation order (``docs/OBSERVABILITY.md``
#: lists exactly these names).
WINDOW_NAMES = (
    "decision_latency_ms",
    "queue_depth",
    "cache_hit_ratio",
    "jct_s",
)

#: Percentiles every snapshot reports, as (label, quantile) pairs.
SNAPSHOT_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


def nearest_rank(sorted_samples: List[float], q: float) -> float:
    """Nearest-rank percentile over an already-sorted sample list.

    The same convention the serve bench uses (``ceil(q·n)``-th order
    statistic, clamped into range); returns 0.0 on an empty list.
    """
    if not sorted_samples:
        return 0.0
    rank = max(
        0,
        min(len(sorted_samples) - 1, math.ceil(q * len(sorted_samples)) - 1),
    )
    return sorted_samples[rank]


class SlidingWindow:
    """A bounded, time-stamped sample window with percentile queries."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        horizon_s: Optional[float] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("window capacity must be >= 1")
        if horizon_s is not None and horizon_s <= 0:
            raise ValueError("window horizon must be positive when set")
        self.capacity = int(capacity)
        self.horizon_s = horizon_s
        #: (ts_s, value) pairs in observation order; bounded by capacity.
        self._samples: Deque[Tuple[float, float]] = deque(
            maxlen=self.capacity
        )
        #: Total samples ever observed (survives eviction).
        self.observed_total = 0

    def __len__(self) -> int:
        return len(self._samples)

    def observe(self, ts_s: float, value: float) -> None:
        """Record one sample at simulation time ``ts_s``."""
        self.observed_total += 1
        if self.horizon_s is not None:
            cutoff = ts_s - self.horizon_s
            while self._samples and self._samples[0][0] < cutoff:
                self._samples.popleft()
        self._samples.append((float(ts_s), float(value)))

    def values(self) -> List[float]:
        """The retained sample values, in observation order."""
        return [value for _, value in self._samples]

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained samples."""
        return nearest_rank(sorted(self.values()), q)

    def last(self) -> Optional[float]:
        """The most recent sample value, or ``None`` when empty."""
        return self._samples[-1][1] if self._samples else None

    def clear(self) -> None:
        """Drop every sample and reset the observation counter."""
        self._samples.clear()
        self.observed_total = 0

    def snapshot(self) -> dict:
        """Count + percentiles, in a stable key order."""
        ordered = sorted(self.values())
        snap = {
            "count": len(ordered),
            "observed_total": self.observed_total,
        }
        for label, q in SNAPSHOT_QUANTILES:
            snap[label] = nearest_rank(ordered, q)
        return snap
