"""Streaming tracer: fan events out to live subscribers as they happen.

:class:`StreamingTracer` is a drop-in :class:`~repro.obs.tracer.Tracer`
that additionally calls every registered *sink* with each event at
emission time. ``repro.serve`` uses it to push the run's `repro.obs`
stream to connected socket subscribers (JSONL over the wire) while the
service is still running — ``python -m repro report --tail HOST:PORT``
is one such subscriber — and to measure admission-to-placement latency
without a second bookkeeping path.

Sinks see every event exactly once, in emission order, *including*
events dropped from the in-memory list by a ``max_events`` cap: the cap
bounds the tracer's memory, not the stream. A sink must never mutate
the event it receives (the same object lands in the recorded list).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.obs.events import Event
from repro.obs.tracer import Tracer

#: A sink receives each event at emission time; exceptions propagate to
#: the emitter, so sinks must be non-raising (enqueue and return).
EventSink = Callable[[Event], None]


class StreamingTracer(Tracer):
    """A recording tracer that also pushes each event to live sinks."""

    def __init__(self, max_events: Optional[int] = None) -> None:
        super().__init__(max_events=max_events)
        self._sinks: List[EventSink] = []

    def add_sink(self, sink: EventSink) -> None:
        """Register a sink; it sees every event emitted from now on."""
        self._sinks.append(sink)

    def remove_sink(self, sink: EventSink) -> None:
        """Unregister a sink (no-op if it was never added)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    def emit(
        self,
        ts_s: float,
        etype: str,
        job_id: Optional[str] = None,
        **fields,
    ) -> None:
        """Record the event, then stream it to every sink."""
        self._seq += 1
        event = Event(
            ts_s=ts_s,
            etype=etype,
            job_id=job_id,
            fields=fields,
            seq=self._seq,
        )
        if (
            self._max_events is not None
            and len(self.events) >= self._max_events
        ):
            self.dropped += 1
        else:
            self.events.append(event)
            self.metrics.inc("events_total")
            self.metrics.inc(f"events.{etype}")
            if job_id is not None:
                self.metrics.inc(f"events.{etype}", job_id=job_id)
        for sink in self._sinks:
            sink(event)
