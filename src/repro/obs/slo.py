"""SLO tracking: per-job JCT budgets (``deadline_s``) and their fate.

A job may declare an optional ``deadline_s`` — a completion-time budget
relative to its submission. The :class:`SLOTracker` watches every such
job inside the simulators (both of them drive the same tracker from
their deterministic control points: admission, decision rounds, epoch
boundaries, retirement) and narrates the budget's life through two
event types, each emitted **at most once per job**:

* ``slo_warn`` — the budget passed :data:`WARN_FRACTION` of its length
  with the job unfinished;
* ``slo_violation`` — the budget is exhausted. ``state`` says whether
  the job was still ``running`` when the deadline passed or only
  revealed the overrun at ``finished`` (possible when the deadline
  falls between two checkpoints and the job finishes late in between).

Jobs without a deadline never touch the tracker, so traces that do not
use SLOs produce byte-identical logs with or without it. Checks run
only at simulation-driven instants, so batch and online runs of the
same trace emit identical warn/violation sequences (the serve
equivalence tests rely on this).

``report --slo`` renders the attainment table from the resulting event
log alone — see :func:`repro.obs.report.slo_table`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.obs.tracer import Tracer

#: Fraction of the budget after which the single warning fires.
WARN_FRACTION = 0.8


@dataclasses.dataclass
class _TrackedJob:
    """One deadline-carrying job's SLO state."""

    submit_s: float
    deadline_s: float
    warned: bool = False
    violated: bool = False


class SLOTracker:
    """Watch deadline-carrying jobs; emit each SLO event once."""

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer
        self._jobs: Dict[str, _TrackedJob] = {}

    def __len__(self) -> int:
        return len(self._jobs)

    def register(
        self, job_id: str, submit_s: float, deadline_s: Optional[float]
    ) -> None:
        """Start tracking a job; no-op when it has no deadline."""
        if deadline_s is None:
            return
        self._jobs[job_id] = _TrackedJob(
            submit_s=submit_s, deadline_s=float(deadline_s)
        )

    def discard(self, job_id: str) -> None:
        """Stop tracking (cancellation); nothing further is emitted."""
        self._jobs.pop(job_id, None)

    def check(self, now_s: float) -> None:
        """Advance every tracked job's budget to ``now_s``.

        Call from simulation-driven control points only (decision
        rounds, epoch boundaries, retirements) — never from wall-clock
        timers — so the emitted sequence is a deterministic function of
        the run.
        """
        if not self._tracer.enabled or not self._jobs:
            return
        for job_id in sorted(self._jobs):
            tracked = self._jobs[job_id]
            elapsed = now_s - tracked.submit_s
            if not tracked.violated and elapsed >= tracked.deadline_s:
                tracked.violated = True
                self._tracer.slo_violation(
                    now_s,
                    job_id,
                    deadline_s=tracked.deadline_s,
                    jct_s=elapsed,
                    overrun_s=elapsed - tracked.deadline_s,
                    state="running",
                )
            elif (
                not tracked.warned
                and not tracked.violated
                and elapsed >= WARN_FRACTION * tracked.deadline_s
            ):
                tracked.warned = True
                self._tracer.slo_warn(
                    now_s,
                    job_id,
                    deadline_s=tracked.deadline_s,
                    elapsed_s=elapsed,
                    remaining_s=tracked.deadline_s - elapsed,
                    ratio=elapsed / tracked.deadline_s,
                )

    def finish(self, job_id: str, finish_s: float) -> None:
        """Settle a finishing job: late finishes violate exactly once."""
        tracked = self._jobs.pop(job_id, None)
        if tracked is None or not self._tracer.enabled:
            return
        jct = finish_s - tracked.submit_s
        if not tracked.violated and jct > tracked.deadline_s:
            self._tracer.slo_violation(
                finish_s,
                job_id,
                deadline_s=tracked.deadline_s,
                jct_s=jct,
                overrun_s=jct - tracked.deadline_s,
                state="finished",
            )
