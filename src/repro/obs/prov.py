"""Decision provenance: why a job got its GPUs and cache share.

Every storage-decision round of either simulator emits one
``decision_epoch`` event (cluster-level context: who was running, what
totals were divided) followed by one ``decision_job`` event per running
job, carrying exactly the inputs Eq. 4 consumed — the compute-bound
rate ``f*``, the modelled hit ratio, the remote-IO grant — plus the
policy's score for the job and the resulting allocation (GPUs, cache
share, IO). Because emission happens inside the simulators (lint rule
OBS005 keeps it out of ``repro/serve/``), a batch run and an online
run over the same trace produce bit-identical provenance, which the
serve equivalence tests pin down with ``localize_divergence``.

:func:`emit_decision_provenance` is the one emission entry point, and
:func:`decision_chain` / :func:`render_explain` are the query side that
``python -m repro explain <events> <job-id>`` renders: the per-round
causal chain of a job's allocation, with Eq. 4 achieved-rate
reconstruction (``min(f*, grant/miss)``) and Eq. 5 cache efficiency
(``f*/d``) called out where the cache share moved.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

from repro.obs import events as ev
from repro.obs.events import Event
from repro.obs.tracer import Tracer

#: Hit ratios within this of 1.0 mean "no remote demand" — the same
#: epsilon the fluid simulator's rate recompute uses.
_FULL_HIT_EPS = 1e-12


@dataclasses.dataclass
class DecisionRecord:
    """One job's allocation decision at one round, reconstructed."""

    round: int
    ts_s: float
    trigger: str
    gpus: float
    cache_mb: float
    io_mbps: float
    f_star_mbps: float
    hit_ratio: float
    est_mbps: float
    io_bound: bool
    eff_cache_mb: float
    score: float
    #: Assigned GPU generation ("?" for pre-heterogeneity logs).
    generation: str = "?"
    #: Per-generation compute bounds weighed this round (empty for
    #: pre-heterogeneity logs or generation-naive schedulers).
    f_star_gen_mbps: Dict[str, float] = dataclasses.field(
        default_factory=dict
    )


def achieved_rate(
    f_star_mbps: float, hit_ratio: float, io_grant_mbps: float
) -> float:
    """Eq. 4 achieved throughput: ``min(f*, grant / miss)``.

    Mirrors the fluid simulator's ``_recompute_rates`` exactly, so the
    provenance log carries the same number the run actually used.
    """
    miss = 1.0 - hit_ratio
    if miss <= _FULL_HIT_EPS:
        return f_star_mbps
    return min(f_star_mbps, io_grant_mbps / miss)


def emit_decision_provenance(
    tracer: Tracer,
    ts_s: float,
    round_index: int,
    trigger: str,
    running_jobs: Sequence,
    num_queued: int,
    gpus_total: float,
    cache_total_mb: float,
    io_total_mbps: float,
    gpu_grants: Dict[str, float],
    cache_key: Callable,
    cache_targets: Dict[str, float],
    hit_ratios: Dict[str, float],
    io_grants: Dict[str, float],
    f_stars: Dict[str, float],
    effective_mb: Callable,
    scores: Dict[str, float],
    generations: Optional[Dict[str, str]] = None,
    gen_f_stars: Optional[Dict[str, Dict[str, float]]] = None,
    default_generation: str = "V100",
) -> None:
    """Emit one round's ``decision_epoch`` + per-job ``decision_job``.

    Jobs are emitted in ``job_id`` order so the provenance subsequence
    is deterministic regardless of the caller's iteration order. Free
    when tracing is off (callers still guard on ``tracer.enabled``).

    ``generations`` maps job_id to the assigned GPU generation and
    ``gen_f_stars`` to the per-generation compute bounds the policy
    weighed; jobs absent from either fall back to
    ``default_generation`` and a one-entry ``{generation: f*}`` map,
    so homogeneous runs carry the same (trivially constant) fields —
    batch and serve emissions stay bit-identical either way.
    """
    if not tracer.enabled:
        return
    tracer.decision_epoch(
        ts_s,
        round=round_index,
        trigger=trigger,
        num_running=len(running_jobs),
        num_queued=num_queued,
        gpus_total=gpus_total,
        cache_total_mb=cache_total_mb,
        io_total_mbps=io_total_mbps,
    )
    for job in sorted(running_jobs, key=lambda j: j.job_id):
        job_id = job.job_id
        f_star = f_stars.get(job_id, 0.0)
        hit = min(1.0, max(0.0, hit_ratios.get(job_id, 0.0)))
        grant = io_grants.get(job_id, 0.0)
        est = achieved_rate(f_star, hit, grant)
        generation = (generations or {}).get(
            job_id, default_generation
        )
        by_gen = (gen_f_stars or {}).get(job_id)
        if by_gen is None:
            by_gen = {generation: f_star}
        tracer.decision_job(
            ts_s,
            job_id,
            round=round_index,
            gpus=gpu_grants.get(job_id, 0.0),
            cache_mb=cache_targets.get(cache_key(job), 0.0),
            io_mbps=grant,
            f_star_mbps=f_star,
            hit_ratio=hit,
            est_mbps=est,
            io_bound=est < f_star - 1e-9,
            eff_cache_mb=effective_mb(job),
            score=scores.get(job_id, 0.0),
            generation=generation,
            f_star_gen_mbps=dict(by_gen),
        )


# ----------------------------------------------------------------------
# Query side (``python -m repro explain``).
# ----------------------------------------------------------------------


def decision_chain(
    events: Sequence[Event], job_id: str
) -> List[DecisionRecord]:
    """Every :class:`DecisionRecord` of ``job_id``, in round order."""
    triggers: Dict[int, str] = {}
    for event in events:
        if event.etype == ev.DECISION_EPOCH:
            triggers[event.fields["round"]] = event.fields["trigger"]
    chain: List[DecisionRecord] = []
    for event in events:
        if event.etype != ev.DECISION_JOB or event.job_id != job_id:
            continue
        f = event.fields
        chain.append(
            DecisionRecord(
                round=f["round"],
                ts_s=event.ts_s,
                trigger=triggers.get(f["round"], "?"),
                gpus=f["gpus"],
                cache_mb=f["cache_mb"],
                io_mbps=f["io_mbps"],
                f_star_mbps=f["f_star_mbps"],
                hit_ratio=f["hit_ratio"],
                est_mbps=f["est_mbps"],
                io_bound=f["io_bound"],
                eff_cache_mb=f["eff_cache_mb"],
                score=f["score"],
                # ``.get`` defaults keep pre-heterogeneity event logs
                # replayable.
                generation=f.get("generation", "?"),
                f_star_gen_mbps=dict(f.get("f_star_gen_mbps") or {}),
            )
        )
    return chain


def job_identity(
    events: Sequence[Event], job_id: str
) -> Optional[dict]:
    """The job's ``job_submit`` fields, or ``None`` when absent."""
    for event in events:
        if event.etype == ev.JOB_SUBMIT and event.job_id == job_id:
            return dict(event.fields)
    return None


def render_explain(events: Sequence[Event], job_id: str) -> str:
    """The human-readable causal chain for one job's allocations."""
    chain = decision_chain(events, job_id)
    identity = job_identity(events, job_id)
    lines: List[str] = []
    if identity is not None:
        dataset_mb = identity.get("dataset_mb", 0.0) or 0.0
        f_stars = [r.f_star_mbps for r in chain]
        f_star = max(f_stars) if f_stars else 0.0
        efficiency = f_star / dataset_mb if dataset_mb > 0 else 0.0
        deadline = identity.get("deadline_s")
        deadline_txt = (
            f", deadline {deadline:.0f}s" if deadline is not None else ""
        )
        lines.append(
            f"job {job_id}: {identity.get('model', '?')} on "
            f"{identity.get('dataset', '?')} "
            f"({dataset_mb:,.0f} MB), f* {f_star:,.1f} MB/s, "
            f"Eq.5 cache efficiency f*/d = {efficiency:.4f}/s"
            f"{deadline_txt}"
        )
    if not chain:
        lines.append(
            f"no decision records for {job_id!r} "
            "(job never ran, or the run was traced without provenance)"
        )
        return "\n".join(lines)
    prev: Optional[DecisionRecord] = None
    for rec in chain:
        bound = "io-bound" if rec.io_bound else "compute-bound"
        gen_txt = (
            f" on {rec.generation}" if rec.generation != "?" else ""
        )
        lines.append(
            f"round {rec.round} @ t={rec.ts_s:,.1f}s [{rec.trigger}]: "
            f"gpus {rec.gpus:g}{gen_txt}, cache {rec.cache_mb:,.1f} MB "
            f"(effective {rec.eff_cache_mb:,.1f}), "
            f"io {rec.io_mbps:,.1f} MB/s, score {rec.score:.4g}"
        )
        if len(rec.f_star_gen_mbps) > 1:
            alts = ", ".join(
                f"{gen} {f_star:,.1f}"
                for gen, f_star in rec.f_star_gen_mbps.items()
            )
            lines.append(f"  f* by generation (MB/s): {alts}")
        lines.append(
            f"  Eq.4: est = min(f* {rec.f_star_mbps:,.1f}, "
            f"grant {rec.io_mbps:,.1f} / miss {1.0 - rec.hit_ratio:.3f})"
            f" = {rec.est_mbps:,.1f} MB/s -> {bound}"
        )
        if prev is not None and abs(rec.cache_mb - prev.cache_mb) > 1e-9:
            direction = "rose" if rec.cache_mb > prev.cache_mb else "fell"
            lines.append(
                f"  cache share {direction} "
                f"{prev.cache_mb:,.1f} -> {rec.cache_mb:,.1f} MB; "
                f"hit {prev.hit_ratio:.3f} -> {rec.hit_ratio:.3f}, "
                f"Eq.4 est {prev.est_mbps:,.1f} -> "
                f"{rec.est_mbps:,.1f} MB/s"
            )
        prev = rec
    return "\n".join(lines)
