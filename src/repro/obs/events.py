"""The structured event schema shared by both simulators.

Every observable state change in a run is one :class:`Event`: a typed,
timestamped record with a fixed per-type field set. The schema is the
contract between the emitting sites (simulators, scheduler, cache
systems) and every consumer (exporters, the ``report`` CLI, future
fidelity tooling) — it is documented field-by-field in
``docs/OBSERVABILITY.md`` and the two are kept in lockstep by
``tools/check_obs_docs.py`` (run as a tier-1 test).

Event types
-----------
``job_submit`` / ``job_start`` / ``job_finish``
    The job lifecycle. Both simulators emit these in the same order for
    the same trace, which makes the lifecycle subsequence the anchor for
    fluid-vs-minibatch fidelity localisation.
``sched_decision``
    One scheduling round (Algorithm 1): policy, job counts, aggregate
    grants, and wall-clock decision latency.
``alloc_change``
    A job's GPU grant changed between consecutive rounds.
``cache_admit`` / ``cache_evict``
    Resident bytes of a cache key grew / shrank.
``promote_effective``
    A job's resident bytes became *effective* — at a job start (sharing
    pays off immediately) or an epoch boundary (§6 delayed
    effectiveness; see ``docs/MODEL.md`` §"Delayed effectiveness").
``epoch_boundary``
    A job completed an epoch (not emitted for the final epoch, which
    coincides with ``job_finish``).
``io_throttle``
    A job's remote-IO grant for the coming round, alongside the
    instantaneous demand it throttles.
``fault_inject`` / ``node_down`` / ``node_up``
    The fault subsystem (``repro.faults``): one ``fault_inject`` per
    applied schedule entry, plus capacity bookkeeping for node kinds.
``cache_invalidate``
    A fault destroyed resident bytes of a cache key (distinct from
    ``cache_evict``, which is policy-driven).
``job_preempt`` / ``job_restart``
    A job was preempted by a fault (rolled back to its last epoch
    boundary) / released from an explicit ``job_preempt`` hold.
``service_start`` / ``service_stop`` / ``job_reject`` / ``clock_set``
    The online service lifecycle (``repro.serve``): the long-running
    scheduler came up / drained and exited / bounced a submission off
    the admission queue / had its virtual clock reconfigured. Only the
    service may emit these (lint rule OBS004); batch runs never do, so
    they are excluded from equivalence anchors.
``job_cancel``
    A job was withdrawn online before finishing (emitted by the
    simulators' ``cancel_job``, so it is not service-scoped).
``decision_epoch`` / ``decision_job``
    Decision provenance: one ``decision_epoch`` per storage-decision
    round (who was running, what totals were divided) followed by one
    ``decision_job`` per running job carrying the Eq. 4 estimator
    inputs (``f*``, hit ratio, IO grant), the policy score, and the
    resulting allocation. Emitted by the simulators only (lint rule
    OBS005), so batch and online runs produce identical provenance.
``slo_warn`` / ``slo_violation``
    SLO tracking against a job's optional ``deadline_s`` (a JCT
    budget): a single warning as the budget nears exhaustion, and a
    single violation when it is exceeded — while still running or,
    failing that, at finish. Simulator-scoped like provenance
    (lint rule OBS005).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

JOB_SUBMIT = "job_submit"
JOB_START = "job_start"
JOB_FINISH = "job_finish"
SCHED_DECISION = "sched_decision"
CACHE_ADMIT = "cache_admit"
CACHE_EVICT = "cache_evict"
PROMOTE_EFFECTIVE = "promote_effective"
IO_THROTTLE = "io_throttle"
EPOCH_BOUNDARY = "epoch_boundary"
ALLOC_CHANGE = "alloc_change"
FAULT_INJECT = "fault_inject"
NODE_DOWN = "node_down"
NODE_UP = "node_up"
CACHE_INVALIDATE = "cache_invalidate"
JOB_PREEMPT = "job_preempt"
JOB_RESTART = "job_restart"
SERVICE_START = "service_start"
SERVICE_STOP = "service_stop"
JOB_REJECT = "job_reject"
JOB_CANCEL = "job_cancel"
CLOCK_SET = "clock_set"
DECISION_EPOCH = "decision_epoch"
DECISION_JOB = "decision_job"
SLO_WARN = "slo_warn"
SLO_VIOLATION = "slo_violation"

#: Every event type, in documentation order.
EVENT_TYPES = (
    JOB_SUBMIT,
    JOB_START,
    JOB_FINISH,
    SCHED_DECISION,
    ALLOC_CHANGE,
    CACHE_ADMIT,
    CACHE_EVICT,
    PROMOTE_EFFECTIVE,
    EPOCH_BOUNDARY,
    IO_THROTTLE,
    FAULT_INJECT,
    NODE_DOWN,
    NODE_UP,
    CACHE_INVALIDATE,
    JOB_PREEMPT,
    JOB_RESTART,
    SERVICE_START,
    SERVICE_STOP,
    JOB_REJECT,
    JOB_CANCEL,
    CLOCK_SET,
    DECISION_EPOCH,
    DECISION_JOB,
    SLO_WARN,
    SLO_VIOLATION,
)

#: The job-lifecycle subset both simulators must emit identically.
LIFECYCLE_TYPES = (JOB_SUBMIT, JOB_START, JOB_FINISH)

#: The service-lifecycle subset. Only ``repro.serve`` may emit these
#: (enforced by lint rule OBS004); ``job_cancel`` is deliberately not
#: here — the simulators emit it from ``cancel_job``.
SERVICE_TYPES = (SERVICE_START, SERVICE_STOP, JOB_REJECT, CLOCK_SET)

#: The fault-subsystem subset (``repro.faults``). For the same fault
#: schedule, both simulators must emit the same sequence of these
#: (timestamps may differ: the minibatch emulator applies faults at
#: batch boundaries).
FAULT_TYPES = (
    FAULT_INJECT,
    NODE_DOWN,
    NODE_UP,
    CACHE_INVALIDATE,
    JOB_PREEMPT,
    JOB_RESTART,
)

#: Decision-provenance and SLO subset. Only the simulators (and the
#: typed helpers in ``obs/tracer.py`` that define the emission API) may
#: emit these — enforced by lint rule OBS005. The online service reuses
#: the simulator code path, which is what keeps batch and serve
#: provenance bit-identical.
SIMULATOR_SCOPED_TYPES = (
    DECISION_EPOCH,
    DECISION_JOB,
    SLO_WARN,
    SLO_VIOLATION,
)

#: Field names each event type carries (beyond ``ts_s``/``etype``/
#: ``job_id``). The docs-consistency check enforces that the schema
#: tables in ``docs/OBSERVABILITY.md`` list exactly these.
EVENT_FIELDS: Dict[str, tuple] = {
    JOB_SUBMIT: (
        "model",
        "dataset",
        "num_gpus",
        "dataset_mb",
        "total_work_mb",
        "deadline_s",
    ),
    JOB_START: ("gpus", "queue_delay_s"),
    JOB_FINISH: ("jct_s", "epochs_done"),
    SCHED_DECISION: (
        "policy",
        "storage_aware",
        "num_jobs",
        "num_running",
        "gpus_granted",
        "cache_granted_mb",
        "io_granted_mbps",
        "latency_ms",
    ),
    ALLOC_CHANGE: ("gpus_before", "gpus_after"),
    CACHE_ADMIT: ("key", "delta_mb", "resident_mb", "via"),
    CACHE_EVICT: ("key", "delta_mb", "resident_mb", "reason"),
    PROMOTE_EFFECTIVE: ("key", "effective_mb", "reason"),
    EPOCH_BOUNDARY: ("epoch",),
    IO_THROTTLE: (
        "desired_mbps",
        "hit_ratio",
        "demand_mbps",
        "grant_mbps",
        "capped",
    ),
    FAULT_INJECT: ("kind", "target", "magnitude"),
    NODE_DOWN: ("kind", "gpus_lost", "cache_lost_mb"),
    NODE_UP: ("kind", "gpus_restored", "cache_restored_mb"),
    CACHE_INVALIDATE: ("key", "delta_mb", "resident_mb", "cause"),
    JOB_PREEMPT: ("reason", "rollback_mb", "epoch"),
    JOB_RESTART: ("reason", "epoch"),
    SERVICE_START: ("policy", "cache", "simulator", "gpus", "queue_limit"),
    SERVICE_STOP: ("reason", "jobs_submitted", "jobs_finished"),
    JOB_REJECT: ("reason", "queue_depth"),
    JOB_CANCEL: ("reason", "work_done_mb"),
    CLOCK_SET: ("action", "speedup", "virtual_s"),
    DECISION_EPOCH: (
        "round",
        "trigger",
        "num_running",
        "num_queued",
        "gpus_total",
        "cache_total_mb",
        "io_total_mbps",
    ),
    DECISION_JOB: (
        "round",
        "gpus",
        "cache_mb",
        "io_mbps",
        "f_star_mbps",
        "hit_ratio",
        "est_mbps",
        "io_bound",
        "eff_cache_mb",
        "score",
        "generation",
        "f_star_gen_mbps",
    ),
    SLO_WARN: ("deadline_s", "elapsed_s", "remaining_s", "ratio"),
    SLO_VIOLATION: ("deadline_s", "jct_s", "overrun_s", "state"),
}


@dataclasses.dataclass
class Event:
    """One structured trace record.

    ``ts_s`` is simulation time (seconds); ``seq`` is the tracer's
    emission counter, which breaks timestamp ties and gives every run a
    total event order. ``job_id`` is ``None`` for cluster-scoped events
    (e.g. a shared cache key's eviction).
    """

    ts_s: float
    etype: str
    job_id: Optional[str] = None
    fields: Dict[str, object] = dataclasses.field(default_factory=dict)
    seq: int = 0

    def to_dict(self) -> dict:
        """A JSON-safe flat representation (used by the JSONL exporter)."""
        return {
            "seq": self.seq,
            "ts_s": self.ts_s,
            "etype": self.etype,
            "job_id": self.job_id,
            **self.fields,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Event":
        """Rebuild an event from :meth:`to_dict` output."""
        fields = {
            k: v
            for k, v in data.items()
            if k not in ("seq", "ts_s", "etype", "job_id")
        }
        return cls(
            ts_s=float(data["ts_s"]),
            etype=str(data["etype"]),
            job_id=data.get("job_id"),
            fields=fields,
            seq=int(data.get("seq", 0)),
        )


def validate_event(event: Event) -> None:
    """Raise ``ValueError`` if an event does not match the schema."""
    expected = EVENT_FIELDS.get(event.etype)
    if expected is None:
        raise ValueError(
            f"unknown event type {event.etype!r}; "
            f"expected one of {EVENT_TYPES}"
        )
    missing = [name for name in expected if name not in event.fields]
    extra = [name for name in event.fields if name not in expected]
    if missing or extra:
        raise ValueError(
            f"{event.etype}: missing fields {missing}, extra fields {extra}"
        )
