"""repro.obs — structured observability for both simulators.

The observability layer has six pieces (see ``docs/OBSERVABILITY.md``
for the full event schema and worked examples):

* :mod:`repro.obs.events` — the typed event schema (``job_submit`` ...
  ``decision_job``) both simulators, the scheduler, and the cache
  systems emit against;
* :mod:`repro.obs.tracer` — :class:`Tracer` (records events + metrics)
  and the free :data:`NULL_TRACER` default;
* :mod:`repro.obs.registry` / :mod:`repro.obs.windows` —
  :class:`MetricsRegistry` counters/gauges/sliding-window histograms
  with cluster-wide and per-job scopes;
* :mod:`repro.obs.prov` / :mod:`repro.obs.slo` — decision provenance
  (the Eq. 4 inputs behind every allocation; ``python -m repro
  explain``) and SLO tracking against per-job ``deadline_s`` budgets;
* :mod:`repro.obs.export` / :mod:`repro.obs.report` — JSONL / CSV /
  Chrome ``trace_event`` exporters and the ``python -m repro report``
  renderer;
* :mod:`repro.obs.prom` — Prometheus text exposition of the registry
  (the serve HTTP ``/metrics`` endpoint).
"""

from repro.obs.events import (
    EVENT_FIELDS,
    EVENT_TYPES,
    FAULT_TYPES,
    LIFECYCLE_TYPES,
    SERVICE_TYPES,
    SIMULATOR_SCOPED_TYPES,
    Event,
    validate_event,
)
from repro.obs.export import (
    chrome_trace,
    load_events,
    save_chrome_trace,
    save_events,
    save_events_csv,
)
from repro.obs.prom import render_metrics_response, render_snapshot
from repro.obs.prov import (
    DecisionRecord,
    decision_chain,
    emit_decision_provenance,
    render_explain,
)
from repro.obs.registry import METRICS_SCHEMA_VERSION, MetricsRegistry
from repro.obs.report import (
    fault_table,
    render_report,
    render_slo_report,
    save_timeline_csv,
    slo_attainment,
    slo_table,
    timeline_rows,
)
from repro.obs.slo import SLOTracker
from repro.obs.stream import StreamingTracer
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer
from repro.obs.windows import WINDOW_NAMES, SlidingWindow

__all__ = [
    "Event",
    "EVENT_TYPES",
    "EVENT_FIELDS",
    "FAULT_TYPES",
    "LIFECYCLE_TYPES",
    "SERVICE_TYPES",
    "SIMULATOR_SCOPED_TYPES",
    "validate_event",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "StreamingTracer",
    "MetricsRegistry",
    "METRICS_SCHEMA_VERSION",
    "SlidingWindow",
    "WINDOW_NAMES",
    "SLOTracker",
    "DecisionRecord",
    "decision_chain",
    "emit_decision_provenance",
    "render_explain",
    "render_snapshot",
    "render_metrics_response",
    "save_events",
    "load_events",
    "save_events_csv",
    "chrome_trace",
    "save_chrome_trace",
    "render_report",
    "render_slo_report",
    "fault_table",
    "slo_attainment",
    "slo_table",
    "timeline_rows",
    "save_timeline_csv",
]
