"""repro.obs — structured observability for both simulators.

The observability layer has four pieces (see ``docs/OBSERVABILITY.md``
for the full event schema and worked examples):

* :mod:`repro.obs.events` — the typed event schema (``job_submit`` ...
  ``io_throttle``) both simulators, the scheduler, and the cache
  systems emit against;
* :mod:`repro.obs.tracer` — :class:`Tracer` (records events + metrics)
  and the free :data:`NULL_TRACER` default;
* :mod:`repro.obs.registry` — :class:`MetricsRegistry` counters/gauges
  with cluster-wide and per-job scopes;
* :mod:`repro.obs.export` / :mod:`repro.obs.report` — JSONL / CSV /
  Chrome ``trace_event`` exporters and the ``python -m repro report``
  renderer.
"""

from repro.obs.events import (
    EVENT_FIELDS,
    EVENT_TYPES,
    FAULT_TYPES,
    LIFECYCLE_TYPES,
    SERVICE_TYPES,
    Event,
    validate_event,
)
from repro.obs.export import (
    chrome_trace,
    load_events,
    save_chrome_trace,
    save_events,
    save_events_csv,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.report import (
    fault_table,
    render_report,
    save_timeline_csv,
    timeline_rows,
)
from repro.obs.stream import StreamingTracer
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "Event",
    "EVENT_TYPES",
    "EVENT_FIELDS",
    "FAULT_TYPES",
    "LIFECYCLE_TYPES",
    "SERVICE_TYPES",
    "validate_event",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "StreamingTracer",
    "MetricsRegistry",
    "save_events",
    "load_events",
    "save_events_csv",
    "chrome_trace",
    "save_chrome_trace",
    "render_report",
    "fault_table",
    "timeline_rows",
    "save_timeline_csv",
]
