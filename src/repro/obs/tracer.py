"""The structured event tracer and its free no-op variant.

``Tracer`` records :class:`~repro.obs.events.Event` objects in emission
order and keeps a :class:`~repro.obs.registry.MetricsRegistry` updated
alongside. ``NullTracer`` (the module-level ``NULL_TRACER`` singleton)
is the default everywhere: its ``enabled`` flag is ``False`` and every
emit is a no-op, so instrumented hot paths guard with one attribute
check::

    tr = self._tracer
    if tr.enabled:
        tr.cache_admit(self.clock_s, key, delta_mb, resident_mb, "miss")

and pay essentially nothing when tracing is off (the <5% ``matrix``
wall-clock budget in the acceptance criteria).

Typed emit helpers — one per event type — are the only supported way to
produce events: they pin the field set of each type to the schema in
:mod:`repro.obs.events`, so the JSONL log stays machine-parseable and
``docs/OBSERVABILITY.md`` stays truthful.
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs import events as ev
from repro.obs.events import Event
from repro.obs.registry import MetricsRegistry


class Tracer:
    """Recording tracer: appends events, bumps per-type counters."""

    #: Hot paths check this before building event payloads.
    enabled: bool = True

    def __init__(self, max_events: Optional[int] = None) -> None:
        self.events: List[Event] = []
        self.metrics = MetricsRegistry()
        self._seq = 0
        self._max_events = max_events
        self.dropped = 0

    # ------------------------------------------------------------------
    # Core emission.
    # ------------------------------------------------------------------

    def emit(
        self,
        ts_s: float,
        etype: str,
        job_id: Optional[str] = None,
        **fields,
    ) -> None:
        """Record one event (typed helpers below are preferred)."""
        self._seq += 1
        if (
            self._max_events is not None
            and len(self.events) >= self._max_events
        ):
            self.dropped += 1
            return
        self.events.append(
            Event(
                ts_s=ts_s,
                etype=etype,
                job_id=job_id,
                fields=fields,
                seq=self._seq,
            )
        )
        self.metrics.inc("events_total")
        self.metrics.inc(f"events.{etype}")
        if job_id is not None:
            self.metrics.inc(f"events.{etype}", job_id=job_id)

    def clear(self) -> None:
        """Drop recorded events and metrics (reused between runs)."""
        self.events.clear()
        self.metrics.clear()
        self._seq = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # Typed helpers (one per event type in the schema).
    # ------------------------------------------------------------------

    def job_submit(
        self,
        ts_s: float,
        job_id: str,
        model: str,
        dataset: str,
        num_gpus: int,
        dataset_mb: float,
        total_work_mb: float,
        deadline_s: Optional[float] = None,
    ) -> None:
        """A job entered the cluster queue."""
        self.emit(
            ts_s,
            ev.JOB_SUBMIT,
            job_id,
            model=model,
            dataset=dataset,
            num_gpus=num_gpus,
            dataset_mb=dataset_mb,
            total_work_mb=total_work_mb,
            deadline_s=deadline_s,
        )

    def job_start(
        self, ts_s: float, job_id: str, gpus: float, queue_delay_s: float
    ) -> None:
        """A job received its first GPU grant."""
        self.emit(
            ts_s,
            ev.JOB_START,
            job_id,
            gpus=gpus,
            queue_delay_s=queue_delay_s,
        )

    def job_finish(
        self, ts_s: float, job_id: str, jct_s: float, epochs_done: int
    ) -> None:
        """A job consumed its last byte of work."""
        self.emit(
            ts_s, ev.JOB_FINISH, job_id, jct_s=jct_s, epochs_done=epochs_done
        )
        if self.enabled:
            self.metrics.observe("jct_s", ts_s, jct_s)

    def sched_decision(
        self,
        ts_s: float,
        policy: str,
        storage_aware: bool,
        num_jobs: int,
        num_running: int,
        gpus_granted: float,
        cache_granted_mb: float,
        io_granted_mbps: float,
        # The schema reports decision latency in ms on purpose: it is a
        # wall-clock observability reading, not simulated time.
        # lint: disable=UNI002
        latency_ms: float,
    ) -> None:
        """One scheduling round produced a joint allocation."""
        self.emit(
            ts_s,
            ev.SCHED_DECISION,
            policy=policy,
            storage_aware=storage_aware,
            num_jobs=num_jobs,
            num_running=num_running,
            gpus_granted=gpus_granted,
            cache_granted_mb=cache_granted_mb,
            io_granted_mbps=io_granted_mbps,
            latency_ms=latency_ms,
        )
        if self.enabled:
            # Window samples: decision latency is wall-clock by design
            # (observability-only, like the latency_ms field itself);
            # queue depth is the jobs visible but not running.
            self.metrics.observe("decision_latency_ms", ts_s, latency_ms)
            self.metrics.observe(
                "queue_depth", ts_s, float(num_jobs - num_running)
            )

    def alloc_change(
        self,
        ts_s: float,
        job_id: str,
        gpus_before: float,
        gpus_after: float,
    ) -> None:
        """A job's GPU grant changed between rounds."""
        self.emit(
            ts_s,
            ev.ALLOC_CHANGE,
            job_id,
            gpus_before=gpus_before,
            gpus_after=gpus_after,
        )

    def cache_admit(
        self,
        ts_s: float,
        key: str,
        delta_mb: float,
        resident_mb: float,
        via: str,
    ) -> None:
        """Resident bytes of a cache key grew by ``delta_mb``."""
        self.emit(
            ts_s,
            ev.CACHE_ADMIT,
            key=key,
            delta_mb=delta_mb,
            resident_mb=resident_mb,
            via=via,
        )
        if self.enabled:
            self.metrics.inc("cache.admitted_mb", delta_mb)

    def cache_evict(
        self,
        ts_s: float,
        key: str,
        delta_mb: float,
        resident_mb: float,
        reason: str,
    ) -> None:
        """Resident bytes of a cache key shrank by ``delta_mb``."""
        self.emit(
            ts_s,
            ev.CACHE_EVICT,
            key=key,
            delta_mb=delta_mb,
            resident_mb=resident_mb,
            reason=reason,
        )
        if self.enabled:
            self.metrics.inc("cache.evicted_mb", delta_mb)

    def promote_effective(
        self,
        ts_s: float,
        job_id: str,
        key: str,
        effective_mb: float,
        reason: str,
    ) -> None:
        """A job's resident bytes became usable for hits (§6)."""
        self.emit(
            ts_s,
            ev.PROMOTE_EFFECTIVE,
            job_id,
            key=key,
            effective_mb=effective_mb,
            reason=reason,
        )

    def epoch_boundary(self, ts_s: float, job_id: str, epoch: int) -> None:
        """A job finished (non-final) epoch number ``epoch``."""
        self.emit(ts_s, ev.EPOCH_BOUNDARY, job_id, epoch=epoch)

    def io_throttle(
        self,
        ts_s: float,
        job_id: str,
        desired_mbps: float,
        hit_ratio: float,
        demand_mbps: float,
        grant_mbps: float,
    ) -> None:
        """A job's remote-IO grant for the coming decision round."""
        capped = grant_mbps < demand_mbps - 1e-9
        self.emit(
            ts_s,
            ev.IO_THROTTLE,
            job_id,
            desired_mbps=desired_mbps,
            hit_ratio=hit_ratio,
            demand_mbps=demand_mbps,
            grant_mbps=grant_mbps,
            capped=capped,
        )
        if self.enabled:
            if capped:
                self.metrics.inc("io.throttled_rounds", job_id=job_id)
            self.metrics.observe("cache_hit_ratio", ts_s, hit_ratio)

    # ------------------------------------------------------------------
    # Fault-subsystem helpers (``repro.faults``).
    # ------------------------------------------------------------------

    def fault_inject(
        self, ts_s: float, kind: str, target: str, magnitude: float
    ) -> None:
        """A fault-schedule entry was applied to the cluster."""
        self.emit(
            ts_s,
            ev.FAULT_INJECT,
            kind=kind,
            target=target,
            magnitude=magnitude,
        )
        if self.enabled:
            self.metrics.inc("faults.injected")

    def node_down(
        self, ts_s: float, kind: str, gpus_lost: float, cache_lost_mb: float
    ) -> None:
        """Cluster capacity shrank: a server crashed or a cache node died."""
        self.emit(
            ts_s,
            ev.NODE_DOWN,
            kind=kind,
            gpus_lost=gpus_lost,
            cache_lost_mb=cache_lost_mb,
        )

    def node_up(
        self,
        ts_s: float,
        kind: str,
        gpus_restored: float,
        cache_restored_mb: float,
    ) -> None:
        """Cluster capacity recovered (the node returns with a cold disk)."""
        self.emit(
            ts_s,
            ev.NODE_UP,
            kind=kind,
            gpus_restored=gpus_restored,
            cache_restored_mb=cache_restored_mb,
        )

    def cache_invalidate(
        self,
        ts_s: float,
        key: str,
        delta_mb: float,
        resident_mb: float,
        cause: str,
    ) -> None:
        """A fault destroyed ``delta_mb`` resident bytes of a cache key."""
        self.emit(
            ts_s,
            ev.CACHE_INVALIDATE,
            key=key,
            delta_mb=delta_mb,
            resident_mb=resident_mb,
            cause=cause,
        )
        if self.enabled:
            self.metrics.inc("cache.invalidated_mb", delta_mb)

    def job_preempt(
        self,
        ts_s: float,
        job_id: str,
        reason: str,
        rollback_mb: float,
        epoch: int,
    ) -> None:
        """A fault preempted a job; it restarts from its last epoch."""
        self.emit(
            ts_s,
            ev.JOB_PREEMPT,
            job_id,
            reason=reason,
            rollback_mb=rollback_mb,
            epoch=epoch,
        )
        if self.enabled:
            self.metrics.inc("faults.preemptions", job_id=job_id)

    def job_restart(
        self, ts_s: float, job_id: str, reason: str, epoch: int
    ) -> None:
        """A preempted job was released back to the scheduler's queue."""
        self.emit(ts_s, ev.JOB_RESTART, job_id, reason=reason, epoch=epoch)

    # ------------------------------------------------------------------
    # Online-service helpers (``repro.serve``; lint rule OBS004 scopes
    # the service-lifecycle emitters to that package).
    # ------------------------------------------------------------------

    def service_start(
        self,
        ts_s: float,
        policy: str,
        cache: str,
        simulator: str,
        gpus: float,
        queue_limit: int,
    ) -> None:
        """The long-running scheduler service came up."""
        self.emit(
            ts_s,
            ev.SERVICE_START,
            policy=policy,
            cache=cache,
            simulator=simulator,
            gpus=gpus,
            queue_limit=queue_limit,
        )

    def service_stop(
        self,
        ts_s: float,
        reason: str,
        jobs_submitted: int,
        jobs_finished: int,
    ) -> None:
        """The service drained and exited."""
        self.emit(
            ts_s,
            ev.SERVICE_STOP,
            reason=reason,
            jobs_submitted=jobs_submitted,
            jobs_finished=jobs_finished,
        )

    def job_reject(
        self, ts_s: float, job_id: str, reason: str, queue_depth: int
    ) -> None:
        """A submission bounced off the admission queue (backpressure)."""
        self.emit(
            ts_s,
            ev.JOB_REJECT,
            job_id,
            reason=reason,
            queue_depth=queue_depth,
        )
        if self.enabled:
            self.metrics.inc("serve.rejected")

    def job_cancel(
        self, ts_s: float, job_id: str, reason: str, work_done_mb: float
    ) -> None:
        """A job was withdrawn online before finishing."""
        self.emit(
            ts_s,
            ev.JOB_CANCEL,
            job_id,
            reason=reason,
            work_done_mb=work_done_mb,
        )

    def clock_set(
        self, ts_s: float, action: str, speedup: float, virtual_s: float
    ) -> None:
        """The service's virtual clock was reconfigured.

        ``speedup`` is virtual seconds per wall second; ``0.0`` encodes
        "as fast as possible" (no wall pacing).
        """
        self.emit(
            ts_s,
            ev.CLOCK_SET,
            action=action,
            speedup=speedup,
            virtual_s=virtual_s,
        )

    # ------------------------------------------------------------------
    # Decision-provenance and SLO helpers (simulator-scoped; lint rule
    # OBS005 confines their emission to ``repro/sim/`` and the prov/slo
    # modules so batch and online runs stay bit-identical).
    # ------------------------------------------------------------------

    def decision_epoch(
        self,
        ts_s: float,
        round: int,
        trigger: str,
        num_running: int,
        num_queued: int,
        gpus_total: float,
        cache_total_mb: float,
        io_total_mbps: float,
    ) -> None:
        """One storage-decision round's cluster-level context."""
        self.emit(
            ts_s,
            ev.DECISION_EPOCH,
            round=round,
            trigger=trigger,
            num_running=num_running,
            num_queued=num_queued,
            gpus_total=gpus_total,
            cache_total_mb=cache_total_mb,
            io_total_mbps=io_total_mbps,
        )

    def decision_job(
        self,
        ts_s: float,
        job_id: str,
        round: int,
        gpus: float,
        cache_mb: float,
        io_mbps: float,
        f_star_mbps: float,
        hit_ratio: float,
        est_mbps: float,
        io_bound: bool,
        eff_cache_mb: float,
        score: float,
        generation: str,
        f_star_gen_mbps: dict,
    ) -> None:
        """One job's Eq. 4 inputs and resulting allocation this round.

        ``generation`` is the GPU generation the job was placed on
        (the cluster's single generation on homogeneous fleets);
        ``f_star_gen_mbps`` maps each candidate generation to the
        job's compute bound there — a one-entry map when the
        scheduler is generation-naive.
        """
        self.emit(
            ts_s,
            ev.DECISION_JOB,
            job_id,
            round=round,
            gpus=gpus,
            cache_mb=cache_mb,
            io_mbps=io_mbps,
            f_star_mbps=f_star_mbps,
            hit_ratio=hit_ratio,
            est_mbps=est_mbps,
            io_bound=io_bound,
            eff_cache_mb=eff_cache_mb,
            score=score,
            generation=generation,
            f_star_gen_mbps=f_star_gen_mbps,
        )

    def slo_warn(
        self,
        ts_s: float,
        job_id: str,
        deadline_s: float,
        elapsed_s: float,
        remaining_s: float,
        ratio: float,
    ) -> None:
        """A job's JCT budget is nearly exhausted (emitted once)."""
        self.emit(
            ts_s,
            ev.SLO_WARN,
            job_id,
            deadline_s=deadline_s,
            elapsed_s=elapsed_s,
            remaining_s=remaining_s,
            ratio=ratio,
        )
        if self.enabled:
            self.metrics.inc("slo.warnings")

    def slo_violation(
        self,
        ts_s: float,
        job_id: str,
        deadline_s: float,
        jct_s: float,
        overrun_s: float,
        state: str,
    ) -> None:
        """A job exceeded its JCT budget (emitted once per job)."""
        self.emit(
            ts_s,
            ev.SLO_VIOLATION,
            job_id,
            deadline_s=deadline_s,
            jct_s=jct_s,
            overrun_s=overrun_s,
            state=state,
        )
        if self.enabled:
            self.metrics.inc("slo.violations")


class NullTracer(Tracer):
    """The free default: records nothing, counts nothing."""

    enabled = False

    def emit(
        self,
        ts_s: float,
        etype: str,
        job_id: Optional[str] = None,
        **fields,
    ) -> None:
        """Discard the event (every typed helper funnels through here)."""


#: Shared singleton used as the default tracer everywhere.
NULL_TRACER = NullTracer()
