"""Counters and gauges with cluster-wide and per-job scopes.

The registry complements the event log: events answer "what happened,
in what order", the registry answers "how much, in total" without
replaying anything. A :class:`~repro.obs.tracer.Tracer` owns one and
bumps per-event-type counters automatically; instrumented layers
(scheduler, policies, cache systems) add their own domain counters
(decision rounds, bytes admitted, throttled jobs, ...).

Scopes
------
Every metric lives in the *cluster* scope by default; passing
``job_id`` addresses the per-job scope instead. The two are
independent — incrementing a job-scoped counter does not touch the
cluster-scoped counter of the same name, so emitting sites decide
explicitly what aggregates where.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

#: Internal scope key for cluster-wide metrics.
_CLUSTER = None


class MetricsRegistry:
    """In-memory counters (monotonic) and gauges (last-value)."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[Optional[str], str], float] = {}
        self._gauges: Dict[Tuple[Optional[str], str], float] = {}

    # ------------------------------------------------------------------
    # Writing.
    # ------------------------------------------------------------------

    def inc(
        self, name: str, value: float = 1.0, job_id: Optional[str] = None
    ) -> float:
        """Add ``value`` to a counter; returns the new total."""
        key = (job_id, name)
        total = self._counters.get(key, 0.0) + value
        self._counters[key] = total
        return total

    def set_gauge(
        self, name: str, value: float, job_id: Optional[str] = None
    ) -> None:
        """Record the latest value of a gauge."""
        self._gauges[(job_id, name)] = value

    # ------------------------------------------------------------------
    # Reading.
    # ------------------------------------------------------------------

    def counter(self, name: str, job_id: Optional[str] = None) -> float:
        """Current value of a counter (0.0 if never incremented)."""
        return self._counters.get((job_id, name), 0.0)

    def gauge(
        self, name: str, job_id: Optional[str] = None
    ) -> Optional[float]:
        """Latest value of a gauge, or ``None`` if never set."""
        return self._gauges.get((job_id, name))

    def job_ids(self) -> list:
        """Every job id that owns at least one metric, sorted."""
        ids = {
            scope
            for scope, _name in (*self._counters, *self._gauges)
            if scope is not None
        }
        return sorted(ids)

    def snapshot(self) -> dict:
        """A nested, JSON-safe dump: cluster scope plus one per job."""
        out: dict = {
            "cluster": {"counters": {}, "gauges": {}},
            "jobs": {},
        }

        def _bucket(scope: Optional[str]) -> dict:
            if scope is _CLUSTER:
                return out["cluster"]
            return out["jobs"].setdefault(
                scope, {"counters": {}, "gauges": {}}
            )

        for (scope, name), value in sorted(self._counters.items(),
                                           key=lambda kv: (kv[0][0] or "",
                                                           kv[0][1])):
            _bucket(scope)["counters"][name] = value
        for (scope, name), value in sorted(self._gauges.items(),
                                           key=lambda kv: (kv[0][0] or "",
                                                           kv[0][1])):
            _bucket(scope)["gauges"][name] = value
        return out

    def clear(self) -> None:
        """Drop every metric (used between simulation runs)."""
        self._counters.clear()
        self._gauges.clear()
