"""Counters, gauges, and sliding windows with cluster/job scopes.

The registry complements the event log: events answer "what happened,
in what order", the registry answers "how much, in total" without
replaying anything. A :class:`~repro.obs.tracer.Tracer` owns one and
bumps per-event-type counters automatically; instrumented layers
(scheduler, policies, cache systems) add their own domain counters
(decision rounds, bytes admitted, throttled jobs, ...). Sliding-window
histograms (:mod:`repro.obs.windows`) ride alongside for the signals
whose *distribution* matters — decision latency, queue depth, cache
hit ratio, JCT — and surface p50/p95/p99 in the snapshot.

Scopes
------
Every metric lives in the *cluster* scope by default; passing
``job_id`` addresses the per-job scope instead. The two are
independent — incrementing a job-scoped counter does not touch the
cluster-scoped counter of the same name, so emitting sites decide
explicitly what aggregates where.

Snapshot stability
------------------
``snapshot()`` is diff-friendly by contract: it carries a
``schema_version`` key, and every mapping is emitted in sorted key
order (jobs sorted by id, metrics sorted by name), so two snapshots of
equal state serialise to identical JSON. Bench artifacts and serve
``metrics`` responses rely on this.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.obs.windows import DEFAULT_CAPACITY, SlidingWindow

#: Internal scope key for cluster-wide metrics.
_CLUSTER = None

#: Version of the ``snapshot()`` layout. Bump on any structural change
#: (new top-level key, renamed bucket) so consumers can detect drift.
METRICS_SCHEMA_VERSION = 2


class MetricsRegistry:
    """In-memory counters (monotonic), gauges (last-value), windows."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[Optional[str], str], float] = {}
        self._gauges: Dict[Tuple[Optional[str], str], float] = {}
        self._windows: Dict[Tuple[Optional[str], str], SlidingWindow] = {}

    # ------------------------------------------------------------------
    # Writing.
    # ------------------------------------------------------------------

    def inc(
        self, name: str, value: float = 1.0, job_id: Optional[str] = None
    ) -> float:
        """Add ``value`` to a counter; returns the new total."""
        key = (job_id, name)
        total = self._counters.get(key, 0.0) + value
        self._counters[key] = total
        return total

    def set_gauge(
        self, name: str, value: float, job_id: Optional[str] = None
    ) -> None:
        """Record the latest value of a gauge."""
        self._gauges[(job_id, name)] = value

    def observe(
        self,
        name: str,
        ts_s: float,
        value: float,
        job_id: Optional[str] = None,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        """Add one sample to a sliding window (created on first use).

        ``ts_s`` is simulation time; the window's eviction and
        percentiles are deterministic functions of the observed
        ``(ts_s, value)`` sequence (see :mod:`repro.obs.windows`).
        """
        key = (job_id, name)
        window = self._windows.get(key)
        if window is None:
            window = self._windows[key] = SlidingWindow(capacity=capacity)
        window.observe(ts_s, value)

    # ------------------------------------------------------------------
    # Reading.
    # ------------------------------------------------------------------

    def counter(self, name: str, job_id: Optional[str] = None) -> float:
        """Current value of a counter (0.0 if never incremented)."""
        return self._counters.get((job_id, name), 0.0)

    def gauge(
        self, name: str, job_id: Optional[str] = None
    ) -> Optional[float]:
        """Latest value of a gauge, or ``None`` if never set."""
        return self._gauges.get((job_id, name))

    def window(
        self, name: str, job_id: Optional[str] = None
    ) -> Optional[SlidingWindow]:
        """The live window of ``name``, or ``None`` if never observed."""
        return self._windows.get((job_id, name))

    def job_ids(self) -> list:
        """Every job id that owns at least one metric, sorted."""
        ids = {
            scope
            for scope, _name in (
                *self._counters,
                *self._gauges,
                *self._windows,
            )
            if scope is not None
        }
        return sorted(ids)

    def snapshot(self) -> dict:
        """A nested, JSON-safe dump: cluster scope plus one per job.

        Key order is stable (see module docstring): metric names are
        sorted within each bucket and jobs are sorted by id, so equal
        registries serialise identically.
        """
        out: dict = {
            "schema_version": METRICS_SCHEMA_VERSION,
            "cluster": {"counters": {}, "gauges": {}},
            "jobs": {},
        }

        def _bucket(scope: Optional[str]) -> dict:
            if scope is _CLUSTER:
                return out["cluster"]
            return out["jobs"].setdefault(
                scope, {"counters": {}, "gauges": {}}
            )

        for (scope, name), value in sorted(self._counters.items(),
                                           key=lambda kv: (kv[0][0] or "",
                                                           kv[0][1])):
            _bucket(scope)["counters"][name] = value
        for (scope, name), value in sorted(self._gauges.items(),
                                           key=lambda kv: (kv[0][0] or "",
                                                           kv[0][1])):
            _bucket(scope)["gauges"][name] = value
        for (scope, name), window in sorted(self._windows.items(),
                                            key=lambda kv: (kv[0][0] or "",
                                                            kv[0][1])):
            _bucket(scope).setdefault("windows", {})[name] = (
                window.snapshot()
            )
        return out

    def clear(self) -> None:
        """Drop every metric (used between simulation runs)."""
        self._counters.clear()
        self._gauges.clear()
        self._windows.clear()
