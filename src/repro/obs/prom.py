"""Prometheus text exposition of the metrics registry.

Renders a :meth:`~repro.obs.registry.MetricsRegistry.snapshot` (plus
the serve engine's latency summary) in the Prometheus text format
(version 0.0.4), so the online service's HTTP ``/metrics`` endpoint is
scrapeable by stock Prometheus. Mapping:

* counters  → ``repro_<name>`` with ``# TYPE ... counter``;
* gauges    → ``repro_<name>`` with ``# TYPE ... gauge``;
* windows   → ``repro_window_<name>`` summaries: one sample per
  quantile (``{quantile="0.5"}`` ...) plus ``_count``;
* job-scoped metrics carry a ``job="<id>"`` label;
* the serve block → ``repro_serve_*`` gauges and the admission-to-
  placement latency as a ``repro_serve_admit_to_place_ms`` summary.

Metric names are sanitised (every non ``[a-zA-Z0-9_]`` becomes ``_``)
and samples are emitted in the snapshot's stable sorted order, so equal
registries produce byte-identical expositions.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from repro.obs.windows import SNAPSHOT_QUANTILES

#: Content-Type the HTTP endpoint must answer with.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _name(raw: str, prefix: str = "repro_") -> str:
    """A valid Prometheus metric name for a registry metric name."""
    return prefix + _NAME_RE.sub("_", raw)


def _label(value: str) -> str:
    """Escape one label value per the exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _sample(
    name: str, value: float, labels: Optional[Dict[str, str]] = None
) -> str:
    if labels:
        rendered = ",".join(
            f'{key}="{_label(val)}"' for key, val in sorted(labels.items())
        )
        return f"{name}{{{rendered}}} {value:g}"
    return f"{name} {value:g}"


def _scope_lines(
    bucket: dict, labels: Optional[Dict[str, str]], typed: Dict[str, str]
) -> List[str]:
    """Samples of one scope bucket; records metric types in ``typed``."""
    lines: List[str] = []
    for raw, value in bucket.get("counters", {}).items():
        name = _name(raw)
        typed.setdefault(name, "counter")
        lines.append(_sample(name, value, labels))
    for raw, value in bucket.get("gauges", {}).items():
        name = _name(raw)
        typed.setdefault(name, "gauge")
        lines.append(_sample(name, value, labels))
    for raw, window in bucket.get("windows", {}).items():
        name = _name(raw, prefix="repro_window_")
        typed.setdefault(name, "summary")
        for label, q in SNAPSHOT_QUANTILES:
            quantile_labels = dict(labels or {})
            quantile_labels["quantile"] = f"{q:g}"
            lines.append(_sample(name, window[label], quantile_labels))
        lines.append(_sample(f"{name}_count", window["count"], labels))
    return lines


def render_snapshot(snapshot: dict) -> str:
    """The registry snapshot alone, as exposition text."""
    typed: Dict[str, str] = {}
    lines: List[str] = []
    lines.extend(_scope_lines(snapshot.get("cluster", {}), None, typed))
    for job_id, bucket in snapshot.get("jobs", {}).items():
        lines.extend(_scope_lines(bucket, {"job": job_id}, typed))
    return _with_type_headers(lines, typed)


def render_metrics_response(response: dict) -> str:
    """A serve ``metrics`` response as one exposition document."""
    typed: Dict[str, str] = {}
    lines: List[str] = []
    snapshot = response.get("metrics", {})
    lines.extend(_scope_lines(snapshot.get("cluster", {}), None, typed))
    for job_id, bucket in snapshot.get("jobs", {}).items():
        lines.extend(_scope_lines(bucket, {"job": job_id}, typed))
    serve = response.get("serve", {})
    for key in (
        "decisions_total",
        "decision_latency_p99_ms",
        "queue_depth",
        "rejected_total",
    ):
        if key in serve:
            name = f"repro_serve_{key}"
            typed.setdefault(
                name, "counter" if key.endswith("_total") else "gauge"
            )
            lines.append(_sample(name, float(serve[key])))
    latency = serve.get("admit_to_place_ms")
    if latency is not None:
        name = "repro_serve_admit_to_place_ms"
        typed.setdefault(name, "summary")
        for label in ("p50", "p99"):
            if label in latency:
                q = float(label[1:]) / 100.0
                lines.append(
                    _sample(name, latency[label], {"quantile": f"{q:g}"})
                )
        lines.append(_sample(f"{name}_count", latency.get("count", 0)))
    return _with_type_headers(lines, typed)


def _with_type_headers(lines: List[str], typed: Dict[str, str]) -> str:
    """Prepend one ``# TYPE`` header before each metric's first sample."""
    seen = set()
    out: List[str] = []
    for line in lines:
        name = line.split("{", 1)[0].split(" ", 1)[0]
        base = name[:-6] if name.endswith("_count") else name
        header = typed.get(base)
        if header is not None and base not in seen:
            seen.add(base)
            out.append(f"# TYPE {base} {header}")
        out.append(line)
    return "\n".join(out) + "\n"
