"""The online engine: one stepped simulator driven by a virtual clock.

:class:`OnlineEngine` owns the run: it builds a simulator over an
*empty* trace, then feeds it submissions and cancellations while pumping
events whose times fall under the :class:`~repro.serve.clock.VirtualClock`
watermark. Because the simulators expose their batch loop as
``begin()``/``step()``/``finish()`` and online submissions insert into
the pending trace in ``(submit_time_s, job_id)`` order, the engine
executes *exactly* the batch code path — same admission order, same
float operations, same event log — which is what the equivalence tests
pin down with ``localize_divergence``.

The engine is transport-agnostic and synchronous: the asyncio server
(:mod:`repro.serve.server`) serialises all calls onto its event loop,
and the bench/test harnesses call it directly. Wall-clock reads here
meter observable latency (admission→placement) only; they never feed
back into scheduling.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional

from repro import units
from repro.cluster.hardware import Cluster
from repro.obs.stream import StreamingTracer
from repro.serve.clock import VirtualClock
from repro.serve.protocol import (
    REJECT_DUPLICATE,
    REJECT_INVALID,
    ProtocolError,
)
from repro.serve.services import ServiceStack
from repro.sim.fluid import FluidSimulator
from repro.sim.metrics import RunResult
from repro.sim.minibatch import MinibatchEmulator
from repro.workloads.trace_io import job_from_dict

#: Engine-side job states, driven off the event stream (not sim
#: internals): accepted → queued (sim admitted) → running → finished,
#: with cancelled/preempted side exits.
JOB_STATES = (
    "accepted",
    "queued",
    "running",
    "preempted",
    "finished",
    "cancelled",
)


def _percentile(sorted_samples: List[float], q: float) -> float:
    """Nearest-rank percentile over an already-sorted sample list."""
    if not sorted_samples:
        return 0.0
    rank = max(0, min(len(sorted_samples) - 1, math.ceil(q * len(sorted_samples)) - 1))
    return sorted_samples[rank]


class OnlineEngine:
    """Drive one simulator online: submissions in, obs events out.

    Parameters
    ----------
    cluster:
        The hardware the service schedules.
    stack:
        The :class:`~repro.serve.services.ServiceStack` (admission,
        estimator, placement, cache allocation) — its scheduler and
        cache system are the objects the simulator runs.
    clock:
        The virtual clock gating event processing; defaults to an
        unlimited clock (process everything as soon as it is known).
    simulator:
        ``"fluid"`` or ``"minibatch"``.
    tracer:
        A :class:`~repro.obs.stream.StreamingTracer`; created when
        omitted. The engine registers its own sink for job-state and
        latency tracking, so callers must not replace it.
    sim_kwargs:
        Forwarded to the simulator constructor (``reschedule_interval_s``,
        ``faults``, ``max_time_s``, ...).
    """

    def __init__(
        self,
        cluster: Cluster,
        stack: ServiceStack,
        clock: Optional[VirtualClock] = None,
        simulator: str = "fluid",
        tracer: Optional[StreamingTracer] = None,
        **sim_kwargs,
    ) -> None:
        self.cluster = cluster
        self.stack = stack
        self.clock = clock if clock is not None else VirtualClock()
        self.simulator = simulator
        self.tracer = tracer if tracer is not None else StreamingTracer()
        if simulator == "fluid":
            self.sim = FluidSimulator(
                cluster,
                stack.placement.scheduler,
                stack.cache_alloc.cache_system,
                [],
                tracer=self.tracer,
                **sim_kwargs,
            )
        elif simulator == "minibatch":
            self.sim = MinibatchEmulator(
                cluster,
                stack.placement.scheduler,
                stack.cache_alloc.cache_system,
                [],
                tracer=self.tracer,
                **sim_kwargs,
            )
        else:
            raise ValueError("simulator must be 'fluid' or 'minibatch'")
        #: Dataset instances by name — shared across submissions so jobs
        #: naming the same dataset share cache keys, exactly as a trace
        #: loaded in one go would (``trace_io.load_trace`` semantics).
        self._datasets: Dict[str, object] = {}
        self._states: Dict[str, str] = {}
        #: Wall-clock admission→first-placement latencies, milliseconds.
        self._latency_ms: List[float] = []
        self.jobs_submitted = 0
        self.result: Optional[RunResult] = None
        self._stopped = False
        self.tracer.add_sink(self._on_event)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Arm the simulator and announce the service."""
        self.sim.begin()
        if self.tracer.enabled:
            self.tracer.service_start(
                self.sim.clock_s,
                policy=self.stack.policy,
                cache=self.stack.cache,
                simulator=self.simulator,
                gpus=float(self.cluster.total_gpus),
                queue_limit=self.stack.admission.limit,
            )

    def drain(self) -> RunResult:
        """Graceful shutdown: refuse new work, run the backlog dry.

        Resumes the clock unlimited, pumps every remaining event, then
        finalises the run and emits ``service_stop``.
        """
        return self._shutdown("drained", run_dry=True)

    def stop(self, reason: str = "stopped") -> RunResult:
        """Immediate shutdown: finalise without processing the backlog."""
        return self._shutdown(reason, run_dry=False)

    def _shutdown(self, reason: str, run_dry: bool) -> RunResult:
        if self._stopped:
            assert self.result is not None
            return self.result
        self.stack.admission.start_drain()
        if run_dry:
            self.clock.resume(speedup=0)
            while self.sim.step():
                pass
        self.result = self.sim.finish()
        self._stopped = True
        if self.tracer.enabled:
            self.tracer.service_stop(
                self.sim.clock_s,
                reason=reason,
                jobs_submitted=self.jobs_submitted,
                jobs_finished=self.jobs_finished,
            )
        return self.result

    @property
    def stopped(self) -> bool:
        """Whether the engine has finalised (drained or stopped)."""
        return self._stopped

    # ------------------------------------------------------------------
    # Requests.
    # ------------------------------------------------------------------

    def submit(self, job_data: dict) -> dict:
        """Admit one trace-format job dict; raises :class:`ProtocolError`.

        A missing ``submit_time_s`` defaults to the simulation's current
        virtual time; a past one is clamped forward to it (the simulator
        cannot admit behind its own clock without rewriting history).
        """
        data = dict(job_data)
        data.setdefault("v", 1)
        job_id = data.get("job_id")
        if not isinstance(job_id, str) or not job_id:
            raise ProtocolError(
                REJECT_INVALID, "job.job_id must be a non-empty string"
            )
        submit_s = data.get("submit_time_s")
        if submit_s is None:
            submit_s = self.sim.clock_s
        elif not isinstance(submit_s, (int, float)):
            raise ProtocolError(
                REJECT_INVALID, "job.submit_time_s must be a number"
            )
        data["submit_time_s"] = max(float(submit_s), self.sim.clock_s)
        try:
            job = job_from_dict(data, self._datasets)
        except ProtocolError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(
                REJECT_INVALID, f"malformed job payload: {exc}"
            ) from exc
        # Latency metering only — never feeds back into scheduling.
        # lint: disable=DET003
        wall_s = time.perf_counter()
        reason = self.stack.admission.try_admit(job.job_id, wall_s)
        if reason is not None:
            self._reject(job.job_id, reason)
            raise ProtocolError(
                reason, f"submission of {job.job_id!r} rejected: {reason}"
            )
        try:
            self.sim.submit_job(job)
        except ValueError as exc:
            # Known to the simulator (e.g. finished long ago) but not to
            # this admission queue — still a duplicate to the client.
            self.stack.admission.discard(job.job_id)
            self._reject(job.job_id, REJECT_DUPLICATE)
            raise ProtocolError(REJECT_DUPLICATE, str(exc)) from exc
        self._states[job.job_id] = "accepted"
        self.jobs_submitted += 1
        return {
            "ok": True,
            "job_id": job.job_id,
            "submit_time_s": job.submit_time_s,
            "queue_depth": self.stack.admission.depth,
        }

    def _reject(self, job_id: str, reason: str) -> None:
        if self.tracer.enabled:
            self.tracer.job_reject(
                self.sim.clock_s,
                job_id,
                reason=reason,
                queue_depth=self.stack.admission.depth,
            )

    def cancel(self, job_id: str, reason: str = "user") -> dict:
        """Withdraw a job; raises :class:`ProtocolError` when unknown."""
        found = self.sim.cancel_job(job_id, reason=reason)
        if not found:
            raise ProtocolError(
                REJECT_INVALID, f"no pending or running job {job_id!r}"
            )
        self.stack.admission.discard(job_id)
        return {"ok": True, "job_id": job_id, "state": "cancelled"}

    def clock_op(
        self,
        action: str,
        to_s: Optional[float] = None,
        speedup: Optional[float] = None,
    ) -> dict:
        """Apply a ``clock`` request; emits one ``clock_set`` event."""
        if action == "pause":
            self.clock.pause()
        elif action == "resume":
            self.clock.resume(speedup=speedup)
        elif action == "step":
            self.clock.step_to(float(to_s))
        else:  # pragma: no cover - validated at the protocol layer
            raise ProtocolError(REJECT_INVALID, f"bad clock action {action!r}")
        if self.tracer.enabled:
            self.tracer.clock_set(
                self.sim.clock_s,
                action=action,
                speedup=self.clock.speedup or 0.0,
                virtual_s=self.sim.clock_s,
            )
        return {
            "ok": True,
            "action": action,
            "paused": self.clock.paused,
            "speedup": self.clock.speedup or 0.0,
            "watermark_s": self._finite_or_none(self.clock.target_s()),
        }

    def status(self) -> dict:
        """The service's current view, for the ``status`` op."""
        counts = {state: 0 for state in JOB_STATES}
        for state in self._states.values():
            counts[state] += 1
        return {
            "ok": True,
            "virtual_time_s": self.sim.clock_s,
            "watermark_s": self._finite_or_none(self.clock.target_s()),
            "paused": self.clock.paused,
            "speedup": self.clock.speedup or 0.0,
            "simulator": self.simulator,
            "jobs_submitted": self.jobs_submitted,
            "jobs_finished": self.jobs_finished,
            "job_counts": counts,
            "jobs": dict(self._states),
            "services": self.stack.describe(),
            "sched_rounds": self.sim.sched_rounds,
            "loop_events": self.sim.loop_events,
            "events_recorded": len(self.tracer),
        }

    def decision_latency_p99_ms(self) -> float:
        """p99 of the sliding ``decision_latency_ms`` window (wall ms)."""
        window = self.tracer.metrics.window("decision_latency_ms")
        return window.percentile(0.99) if window is not None else 0.0

    def metrics(self) -> dict:
        """Counters/gauges plus serve-level latency percentiles."""
        samples = sorted(self._latency_ms)
        return {
            "ok": True,
            "metrics": self.tracer.metrics.snapshot(),
            "serve": {
                "decisions_total": self.sim.sched_rounds,
                "admit_to_place_ms": {
                    "count": len(samples),
                    "p50": _percentile(samples, 0.50),
                    "p99": _percentile(samples, 0.99),
                },
                "decision_latency_p99_ms": self.decision_latency_p99_ms(),
                "queue_depth": self.stack.admission.depth,
                "rejected_total": self.stack.admission.rejected_total,
            },
        }

    # ------------------------------------------------------------------
    # Pumping.
    # ------------------------------------------------------------------

    def pump(self, max_steps: Optional[int] = None) -> int:
        """Process events up to the clock watermark; returns the count."""
        steps = 0
        while max_steps is None or steps < max_steps:
            if not self.sim.step(limit_s=self.clock.target_s()):
                break
            steps += 1
        return steps

    def idle(self) -> bool:
        """True when the simulator has nothing pending at any time."""
        return self.sim.next_event_time() is None

    def seconds_until_next(self) -> Optional[float]:
        """Wall seconds until the next event becomes processable.

        ``None`` means "no wake-up needed" — nothing is pending, or the
        clock is paused (only an external request can unblock either).
        """
        t_next = self.sim.next_event_time()
        if t_next is None:
            return None
        return self.clock.seconds_until(t_next)

    # ------------------------------------------------------------------

    @property
    def jobs_finished(self) -> int:
        """Submitted jobs that have run to completion."""
        return sum(1 for s in self._states.values() if s == "finished")

    @property
    def latency_samples_ms(self) -> List[float]:
        """Admission→placement latencies recorded so far (wall ms)."""
        return list(self._latency_ms)

    @staticmethod
    def _finite_or_none(value: float) -> Optional[float]:
        return value if math.isfinite(value) else None

    def _on_event(self, event) -> None:
        """Tracer sink: job-state machine + placement latency metering."""
        etype = event.etype
        job_id = event.job_id
        if job_id is None:
            return
        if etype == "job_submit":
            # Jobs the sim admits that the engine never saw (initial
            # trace) enter the state machine here.
            self._states[job_id] = "queued"
        elif etype == "job_start":
            self._states[job_id] = "running"
            submitted_wall = self.stack.admission.mark_placed(job_id)
            if submitted_wall is not None:
                # lint: disable=DET003
                elapsed_s = time.perf_counter() - submitted_wall
                self._latency_ms.append(units.seconds_to_ms(elapsed_s))
        elif etype == "job_preempt":
            self._states[job_id] = "preempted"
        elif etype == "job_restart":
            self._states[job_id] = "running"
        elif etype == "job_finish":
            self._states[job_id] = "finished"
            self.stack.admission.mark_placed(job_id)
        elif etype == "job_cancel":
            self._states[job_id] = "cancelled"
            self.stack.admission.discard(job_id)
