"""CLI wiring for ``python -m repro serve``.

Kept in the serve package (same pattern as ``repro.lint.cli`` /
``repro.perf.cli``): the main CLI calls :func:`configure_parser` on its
``serve`` subparser, and :func:`cmd_serve` builds the stack and runs the
asyncio server until a shutdown request (socket ``shutdown`` op or
SIGINT/SIGTERM) drains it. Helpers shared with the batch commands
(cluster args, fault schedules) are imported from ``repro.cli`` lazily
— at ``cmd_serve`` time — to keep the module import graph acyclic.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal

from repro.obs.export import save_events
from repro.obs.stream import StreamingTracer
from repro.serve.clock import VirtualClock
from repro.serve.engine import OnlineEngine
from repro.serve.server import ServeServer, serve_until_shutdown
from repro.serve.services import ServiceStack
from repro.sim.runner import CACHES, POLICIES


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach serve options; ``parser`` is the ``serve`` subparser."""
    # Lazy: repro.cli imports this module while it is itself loading.
    from repro.cli import _add_cluster_args

    _add_cluster_args(parser)
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=7171,
        help="line-JSON socket port (default 7171; 0 = ephemeral)",
    )
    parser.add_argument(
        "--http-port",
        type=int,
        default=None,
        metavar="PORT",
        help="also expose read-only HTTP /status /metrics /healthz "
        "(default: no HTTP listener; 0 = ephemeral)",
    )
    parser.add_argument(
        "--policy",
        default="fifo",
        help=f"scheduling policy (default fifo; one of {', '.join(POLICIES)})",
    )
    parser.add_argument(
        "--cache",
        default="silod",
        help=f"cache system (default silod; one of {', '.join(CACHES)})",
    )
    parser.add_argument(
        "--simulator",
        default="fluid",
        choices=["fluid", "minibatch"],
        help="simulator backend (default fluid)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        metavar="N",
        help="admission-queue depth before submissions bounce with "
        "queue_full (default 64)",
    )
    parser.add_argument(
        "--speedup",
        type=float,
        default=0.0,
        metavar="X",
        help="virtual seconds per wall second (default 0 = as fast as "
        "possible; e.g. 60 = one virtual minute per second)",
    )
    parser.add_argument(
        "--paused",
        action="store_true",
        help="start with the virtual clock paused; release it with the "
        "clock op (deterministic staging for tests and replays)",
    )
    parser.add_argument(
        "--reschedule-s",
        type=float,
        default=1800.0,
        help="scheduling interval in seconds (default 1800; fluid only — "
        "the minibatch emulator reschedules every decision interval)",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="PATH",
        help="fault-schedule JSON driving cluster churn in the live loop "
        "(see docs/FAULTS.md; mutually exclusive with --churn-seed)",
    )
    parser.add_argument(
        "--churn-seed",
        type=int,
        default=None,
        metavar="N",
        help="generate a seeded random churn schedule instead of loading "
        "one (default: no churn; same seed => same schedule)",
    )
    parser.add_argument(
        "--churn-hours",
        type=float,
        default=24.0,
        metavar="H",
        help="horizon of the generated churn schedule in hours "
        "(default 24.0; only meaningful with --churn-seed)",
    )
    parser.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help="write the run's event log (JSONL) when the service exits",
    )
    parser.add_argument(
        "--max-events",
        type=int,
        default=None,
        metavar="N",
        help="cap the in-memory event log (default: unbounded; live "
        "subscribers still see every event)",
    )
    parser.set_defaults(func=cmd_serve)


def build_server(args: argparse.Namespace) -> ServeServer:
    """Construct the full stack (cluster, engine, server) from args."""
    # Lazy: repro.cli imports this module at parser-build time.
    from repro.cli import _build_cluster, _build_fault_schedule

    cluster = _build_cluster(args)
    stack = ServiceStack.build(
        args.policy, args.cache, queue_limit=args.queue_limit
    )
    clock = VirtualClock(
        speedup=args.speedup or None, start_paused=args.paused
    )
    sim_kwargs = {}
    schedule = _build_fault_schedule(args, cluster)
    if schedule is not None:
        sim_kwargs["faults"] = schedule
        print(f"fault schedule: {len(schedule)} events")
    if args.simulator == "fluid":
        sim_kwargs["reschedule_interval_s"] = args.reschedule_s
    engine = OnlineEngine(
        cluster,
        stack,
        clock=clock,
        simulator=args.simulator,
        tracer=StreamingTracer(max_events=args.max_events),
        **sim_kwargs,
    )
    return ServeServer(
        engine, host=args.host, port=args.port, http_port=args.http_port
    )


async def _amain(server: ServeServer) -> None:
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(sig, server.request_shutdown, True)
    await serve_until_shutdown(server)


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the service until a shutdown request or signal drains it."""
    server = build_server(args)
    asyncio.run(_amain(server))
    engine = server.engine
    result = engine.result
    if result is not None:
        print(
            f"serve: drained after {engine.jobs_submitted} submissions, "
            f"{engine.jobs_finished} finished, "
            f"virtual time {engine.sim.clock_s:.1f}s, "
            f"{engine.sim.sched_rounds} scheduling rounds"
        )
    if args.events:
        save_events(engine.tracer.events, args.events)
        print(f"events: {len(engine.tracer.events)} -> {args.events}")
    return 0
