"""The asyncio service: sockets in front of one :class:`OnlineEngine`.

Single-threaded by construction: every request handler and the pump
loop run on one event loop, and the engine's methods are synchronous,
so engine state never needs locking — a handler's engine call is atomic
with respect to pumping. The pump loop processes simulator events up to
the clock watermark, then sleeps until either the watermark reaches the
next event (paced mode) or a request arrives (the wake event).

Connections speak the line-JSON protocol of :mod:`repro.serve.protocol`.
A ``subscribe`` request switches its connection to streaming mode: the
server replays the run's recorded events and then pushes each new event
as it is emitted, in the exact JSONL layout ``save_events`` writes
(version header first), so ``python -m repro report --tail`` can render
a live run with the batch reader.

An optional HTTP listener exposes read-only ``/status``, ``/metrics``,
and ``/healthz`` for curl/browser consumption of the same payloads.

:class:`ServerThread` hosts the whole stack on a dedicated event-loop
thread so synchronous tests and the bench harness can drive a real
socket server without touching asyncio themselves.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
from typing import List, Optional, Tuple

from repro.obs.export import _HEADER as _EVENTS_HEADER
from repro.obs.prom import (
    PROMETHEUS_CONTENT_TYPE,
    render_metrics_response,
)
from repro.serve.engine import OnlineEngine
from repro.serve.protocol import (
    HELLO,
    MAX_LINE_BYTES,
    REJECT_SHUTTING_DOWN,
    REJECT_TOO_LARGE,
    ProtocolError,
    encode_response,
    parse_request,
    validate_request,
)

#: Simulator steps pumped per loop iteration before yielding to I/O.
_PUMP_BATCH = 512
#: Stream-reader slack above the protocol's line limit.
_READER_LIMIT = MAX_LINE_BYTES + 4096


class ServeServer:
    """Socket front-end and pump loop around one engine."""

    def __init__(
        self,
        engine: OnlineEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        http_port: Optional[int] = None,
    ) -> None:
        self.engine = engine
        self.host = host
        self.port = port
        self.http_port = http_port
        self._server: Optional[asyncio.AbstractServer] = None
        self._http_server: Optional[asyncio.AbstractServer] = None
        self._wake = asyncio.Event()
        self._done = asyncio.Event()
        self._shutting_down = False
        self._drain = True
        self._pump_task: Optional[asyncio.Task] = None
        self._conn_tasks: set = set()
        self._subscribers: List[asyncio.Queue] = []
        engine.tracer.add_sink(self._broadcast)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind, arm the engine, start pumping; returns (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port, limit=_READER_LIMIT
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.http_port is not None:
            self._http_server = await asyncio.start_server(
                self._handle_http, self.host, self.http_port
            )
            self.http_port = self._http_server.sockets[0].getsockname()[1]
        self.engine.start()
        self._pump_task = asyncio.ensure_future(self._pump_loop())
        return self.host, self.port

    async def wait_closed(self) -> None:
        """Block until a shutdown request (or :meth:`request_shutdown`)."""
        await self._done.wait()

    def request_shutdown(self, drain: bool = True) -> None:
        """Flag shutdown; the pump loop performs it (signal-handler safe)."""
        if self._shutting_down:
            return
        self._shutting_down = True
        self._drain = drain
        self._wake.set()

    async def _finalize(self) -> None:
        if self._drain:
            self.engine.drain()
        else:
            self.engine.stop()
        # The service_stop event has been broadcast; let subscribers
        # flush, then close every listener.
        for queue in list(self._subscribers):
            queue.put_nowait(None)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._http_server is not None:
            self._http_server.close()
            await self._http_server.wait_closed()
        # Give subscriber streams one scheduling round to flush, then
        # cancel whatever connections remain parked on a read.
        await asyncio.sleep(0)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._done.set()

    # ------------------------------------------------------------------
    # Pumping.
    # ------------------------------------------------------------------

    async def _pump_loop(self) -> None:
        while not self._shutting_down:
            pumped = self.engine.pump(max_steps=_PUMP_BATCH)
            if pumped >= _PUMP_BATCH:
                # More work is ready: yield once to serve I/O, continue.
                await asyncio.sleep(0)
                continue
            wait_s = self.engine.seconds_until_next()
            self._wake.clear()
            if self._shutting_down:
                break
            if wait_s is None:
                # Idle or paused — only a request can create work.
                await self._wake.wait()
            elif wait_s > 0:
                with contextlib.suppress(asyncio.TimeoutError, TimeoutError):
                    await asyncio.wait_for(self._wake.wait(), timeout=wait_s)
        await self._finalize()

    def _broadcast(self, event) -> None:
        for queue in self._subscribers:
            queue.put_nowait(event)

    # ------------------------------------------------------------------
    # Socket protocol.
    # ------------------------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            writer.write(encode_response(HELLO))
            await writer.drain()
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Line exceeded the reader limit: reject, discard
                    # through the next newline, keep the connection.
                    writer.write(
                        encode_response(
                            ProtocolError(
                                REJECT_TOO_LARGE,
                                f"request line exceeds {MAX_LINE_BYTES} bytes",
                            ).to_response()
                        )
                    )
                    await writer.drain()
                    await self._discard_line(reader)
                    continue
                if not line:
                    break
                if not line.strip():
                    continue
                streaming = await self._handle_request(line, writer)
                if streaming:
                    return  # _stream_events owns the connection now
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            with contextlib.suppress(Exception):
                writer.close()

    async def _discard_line(self, reader: asyncio.StreamReader) -> None:
        while True:
            chunk = await reader.read(65536)
            if not chunk or b"\n" in chunk:
                return

    async def _handle_request(
        self, line: bytes, writer: asyncio.StreamWriter
    ) -> bool:
        """Answer one request; True when the connection went streaming."""
        try:
            op, payload = validate_request(parse_request(line.rstrip(b"\n")))
        except ProtocolError as exc:
            writer.write(encode_response(exc.to_response()))
            await writer.drain()
            return False
        if self._shutting_down and op not in ("status", "metrics", "ping"):
            writer.write(
                encode_response(
                    ProtocolError(
                        REJECT_SHUTTING_DOWN, "service is shutting down"
                    ).to_response()
                )
            )
            await writer.drain()
            return False
        if op == "subscribe":
            writer.write(
                encode_response(
                    {"ok": True, "streaming": True, "events": len(self.engine.tracer)}
                )
            )
            await self._stream_events(writer)
            return True
        try:
            response = self._dispatch(op, payload)
        except ProtocolError as exc:
            response = exc.to_response()
        writer.write(encode_response(response))
        await writer.drain()
        if op == "shutdown":
            self.request_shutdown(drain=bool(payload.get("drain", True)))
        return False

    def _dispatch(self, op: str, payload: dict) -> dict:
        engine = self.engine
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "submit":
            response = engine.submit(payload["job"])
            self._wake.set()
            return response
        if op == "cancel":
            response = engine.cancel(
                payload["job_id"], reason=str(payload.get("reason", "user"))
            )
            self._wake.set()
            return response
        if op == "status":
            return engine.status()
        if op == "metrics":
            return engine.metrics()
        if op == "clock":
            response = engine.clock_op(
                payload["action"],
                to_s=payload.get("to_s"),
                speedup=payload.get("speedup"),
            )
            self._wake.set()
            return response
        if op == "shutdown":
            return {"ok": True, "draining": bool(payload.get("drain", True))}
        raise ProtocolError("unknown_op", f"unhandled op {op!r}")

    async def _stream_events(self, writer: asyncio.StreamWriter) -> None:
        """Replay the log, then tail live events until disconnect.

        Queue registration and the replay snapshot happen in one
        synchronous block, so no event can fall between them; anything
        emitted while the replay is being written lands in the queue.
        """
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.append(queue)
        snapshot = list(self.engine.tracer.events)
        try:
            writer.write((json.dumps(_EVENTS_HEADER) + "\n").encode())
            for event in snapshot:
                writer.write((json.dumps(event.to_dict()) + "\n").encode())
            await writer.drain()
            last_seq = snapshot[-1].seq if snapshot else -1
            while True:
                event = await queue.get()
                if event is None:  # server shutdown sentinel
                    break
                if event.seq <= last_seq:
                    continue
                writer.write((json.dumps(event.to_dict()) + "\n").encode())
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            with contextlib.suppress(ValueError):
                self._subscribers.remove(queue)
            with contextlib.suppress(Exception):
                writer.close()

    # ------------------------------------------------------------------
    # Minimal read-only HTTP.
    # ------------------------------------------------------------------

    async def _handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            while True:  # drain headers
                header = await reader.readline()
                if not header or header in (b"\r\n", b"\n"):
                    break
            parts = request_line.decode("latin-1").split()
            path = parts[1] if len(parts) >= 2 else ""
            if path == "/metrics":
                # Prometheus exposition text, not JSON — the one endpoint
                # a scraper points at (see docs/SERVE.md).
                payload = render_metrics_response(
                    self.engine.metrics()
                ).encode("utf-8")
                status = "200 OK"
                content_type = PROMETHEUS_CONTENT_TYPE
            else:
                if path == "/healthz":
                    body, status = {"ok": not self.engine.stopped}, "200 OK"
                elif path == "/status":
                    body, status = self.engine.status(), "200 OK"
                else:
                    body, status = (
                        {"ok": False, "error": "not_found"},
                        "404 Not Found",
                    )
                payload = json.dumps(body).encode()
                content_type = "application/json"
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode()
                + payload
            )
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()


async def serve_until_shutdown(
    server: ServeServer, announce: bool = True
) -> None:
    """Start ``server`` and block until it shuts itself down."""
    host, port = await server.start()
    if announce:
        print(f"serve: listening on {host}:{port}")
        if server.http_port is not None:
            print(f"serve: http on {host}:{server.http_port}")
    await server.wait_closed()


class ServerThread:
    """A real socket server on a dedicated event-loop thread.

    The synchronous harness the tests and the serve bench use: start it,
    talk to ``(host, port)`` with :class:`~repro.serve.client.ServeClient`
    from the calling thread, then ``stop()``/``join()``.
    """

    def __init__(self, server: ServeServer) -> None:
        self.server = server
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._started = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._startup_error: Optional[BaseException] = None

    def start(self, timeout_s: float = 10.0) -> Tuple[str, int]:
        """Boot the loop thread; returns the bound (host, port)."""
        self._thread.start()
        if not self._started.wait(timeout_s):
            raise RuntimeError("serve thread failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"serve thread failed to start: {self._startup_error}"
            )
        return self.server.host, self.server.port

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._main())
        finally:
            self._loop.close()

    async def _main(self) -> None:
        try:
            await self.server.start()
        except BaseException as exc:  # surface bind errors to start()
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        await self.server.wait_closed()

    def stop(self, drain: bool = True) -> None:
        """Ask the server to shut down (thread-safe)."""
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(
                self.server.request_shutdown, drain
            )

    def join(self, timeout_s: float = 30.0) -> None:
        """Wait for the loop thread to exit; raise if it does not."""
        self._thread.join(timeout_s)
        if self._thread.is_alive():
            raise RuntimeError("serve thread did not exit in time")
