"""repro.serve — the long-lived online scheduler service.

Every other entry point is batch: build a trace, run, exit. This
package turns the reproduction into a *system*: ``python -m repro
serve`` boots a long-running asyncio process that accepts job
submissions, cancellations, and status/metrics queries over a
line-delimited-JSON socket (plus an optional minimal HTTP endpoint),
schedules continuously against simulated virtual time, and streams the
run's ``repro.obs`` events to live subscribers.

The run path is decomposed Blox-style (Agarwal et al.) into composable
services — :class:`~repro.serve.services.AdmissionQueue` (bounded-queue
backpressure), :class:`~repro.serve.services.EstimatorService`,
:class:`~repro.serve.services.PlacementService`, and
:class:`~repro.serve.services.CacheAllocService` — each swappable
through the existing policy/cache registries. The simulators themselves
are the execution engine: they expose a stepped protocol
(``begin``/``step``/``finish``) that the online engine drives one event
at a time, so online and batch runs share a single code path and emit
identical event logs for the same submissions (verified by
``localize_divergence`` in the equivalence tests).

See ``docs/SERVE.md`` for the wire protocol, service decomposition, and
backpressure semantics.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.clock import VirtualClock
from repro.serve.engine import OnlineEngine
from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError
from repro.serve.server import ServeServer, ServerThread
from repro.serve.services import (
    AdmissionQueue,
    CacheAllocService,
    EstimatorService,
    PlacementService,
    ServiceStack,
)

__all__ = [
    "AdmissionQueue",
    "CacheAllocService",
    "EstimatorService",
    "OnlineEngine",
    "PlacementService",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeClient",
    "ServeError",
    "ServeServer",
    "ServerThread",
    "ServiceStack",
    "VirtualClock",
]
