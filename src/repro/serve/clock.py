"""The service's controllable virtual clock.

The online engine never advances the simulation to arbitrary wall-clock
instants — float non-associativity would make online runs diverge from
batch runs. Instead the clock only answers one question: *up to which
virtual time may events be processed right now?* The engine then steps
the simulator through its own exact event times up to that watermark,
so every hop is event-sized and bit-identical to the batch loop.

Three modes:

* **paused** — the watermark is frozen; ``step_to`` raises it
  deterministically (the test/replay mode: stage submissions, then
  release virtual time in controlled increments);
* **paced** — the watermark advances at ``speedup`` virtual seconds per
  wall second from the moment of ``resume`` (demo/SLO mode);
* **unlimited** (``speedup=0``/``None``) — the watermark is ``+inf``
  and the engine runs as fast as the hardware allows (drain mode, and
  the deterministic-equivalence mode: gate-free stepping is exactly the
  batch loop).

Wall-clock reads live only here (and in latency metering): they pace
*when* events are processed, never *what* the simulation computes.
"""

from __future__ import annotations

import math
import time
from typing import Optional


class VirtualClock:
    """Watermark over virtual time: paused, paced, or unlimited."""

    def __init__(
        self,
        speedup: Optional[float] = None,
        start_paused: bool = False,
        start_virtual_s: float = 0.0,
    ) -> None:
        """``speedup``: virtual seconds per wall second; ``None``/``0``
        means unlimited. ``start_paused`` freezes the watermark at
        ``start_virtual_s`` minus infinity — i.e. *nothing* may process
        until the clock is resumed or stepped, so a client can stage
        submissions (even at virtual time 0) without racing the engine.
        """
        self._speedup = None if not speedup else float(speedup)
        self._paused = bool(start_paused)
        #: Virtual watermark reached when last paused/resumed.
        self._held_s = -math.inf if start_paused else float(start_virtual_s)
        # Pacing reads the monotonic wall clock by design: it gates when
        # events process, never what the simulation computes.
        # lint: disable=DET003
        self._wall_anchor = time.monotonic()

    # ------------------------------------------------------------------

    @property
    def paused(self) -> bool:
        """Whether the watermark is currently frozen."""
        return self._paused

    @property
    def speedup(self) -> Optional[float]:
        """Virtual seconds per wall second; ``None`` = unlimited."""
        return self._speedup

    def target_s(self) -> float:
        """The watermark: virtual time events may be processed up to."""
        if self._paused:
            return self._held_s
        if self._speedup is None:
            return math.inf
        # lint: disable=DET003
        elapsed = time.monotonic() - self._wall_anchor
        return self._held_s + elapsed * self._speedup

    def seconds_until(self, virtual_s: float) -> Optional[float]:
        """Wall seconds until the watermark reaches ``virtual_s``.

        ``None`` while paused (only an explicit ``step_to``/``resume``
        can move the watermark); ``0.0`` when already reachable.
        """
        if self._paused:
            return None
        if self._speedup is None:
            return 0.0
        gap = virtual_s - self.target_s()
        if gap <= 0:
            return 0.0
        return gap / self._speedup

    # ------------------------------------------------------------------

    def pause(self) -> float:
        """Freeze the watermark where it is now; returns it."""
        self._held_s = self.target_s()
        self._paused = True
        return self._held_s

    def resume(self, speedup: Optional[float] = None) -> None:
        """Unfreeze; optionally change the pacing rate.

        ``speedup=0``/``None`` resumes unlimited; a positive value paces
        virtual time from the current watermark. Resuming from the
        initial deep-frozen state starts virtual time at 0.
        """
        if speedup is not None:
            self._speedup = None if not speedup else float(speedup)
        if math.isinf(self._held_s):
            self._held_s = 0.0
        self._paused = False
        # lint: disable=DET003
        self._wall_anchor = time.monotonic()

    def step_to(self, virtual_s: float) -> float:
        """While paused, raise the watermark to ``virtual_s``.

        The watermark never moves backwards; returns the new watermark.
        Stepping an unpaused clock pauses it first (so ``step`` is
        always deterministic).
        """
        if not self._paused:
            self.pause()
        self._held_s = max(self._held_s, float(virtual_s))
        return self._held_s
