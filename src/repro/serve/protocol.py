"""The wire protocol of ``python -m repro serve``.

Line-delimited JSON over a plain TCP socket: every request is one JSON
object on one line, every response is one JSON object on one line. On
connect, the server sends a hello line identifying itself and the
protocol version::

    {"kind": "repro-serve", "v": 1}

Requests carry an ``op`` field; everything else is op-specific::

    {"op": "submit", "job": {...trace-format job...}}
    {"op": "cancel", "job_id": "job-7"}
    {"op": "status"}
    {"op": "metrics"}
    {"op": "clock", "action": "pause" | "resume" | "step",
     "to_s": 3600.0, "speedup": 60.0}
    {"op": "subscribe"}
    {"op": "shutdown", "drain": true}
    {"op": "ping"}

Responses are ``{"ok": true, ...}`` on success and ``{"ok": false,
"error": <reason>, "detail": <human text>}`` on failure, where
``error`` is one of the machine-readable :data:`REJECT_REASONS`. A
malformed request never kills the connection — the server answers with
``ok: false`` and keeps reading. After a successful ``subscribe`` the
connection switches to streaming mode: the server replays the run's
``repro.obs`` events so far and then pushes each new event as one JSONL
line (the same layout ``save_events`` writes), which is what ``python
-m repro report --tail`` consumes.

Job payloads reuse the trace format (``repro.workloads.trace_io``)
verbatim, so a trace line can be submitted as-is and datasets shared by
name keep their sharing semantics online.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Tuple

#: Protocol version in the hello line; bump on wire-format changes.
PROTOCOL_VERSION = 1

#: The hello object the server writes on every new connection.
HELLO = {"kind": "repro-serve", "v": PROTOCOL_VERSION}

#: Longest accepted request line, bytes. Longer lines are rejected with
#: ``too_large`` (and the oversized payload is discarded, not parsed).
MAX_LINE_BYTES = 1_000_000

#: Operations the server understands.
OPS = (
    "submit",
    "cancel",
    "status",
    "metrics",
    "clock",
    "subscribe",
    "shutdown",
    "ping",
)

#: Machine-readable rejection reasons (the ``error`` field, and the
#: ``reason`` field of ``job_reject`` events where applicable).
REJECT_BAD_JSON = "bad_json"
REJECT_UNKNOWN_OP = "unknown_op"
REJECT_INVALID = "invalid_request"
REJECT_TOO_LARGE = "too_large"
REJECT_DUPLICATE = "duplicate_id"
REJECT_QUEUE_FULL = "queue_full"
REJECT_SHUTTING_DOWN = "shutting_down"

REJECT_REASONS = (
    REJECT_BAD_JSON,
    REJECT_UNKNOWN_OP,
    REJECT_INVALID,
    REJECT_TOO_LARGE,
    REJECT_DUPLICATE,
    REJECT_QUEUE_FULL,
    REJECT_SHUTTING_DOWN,
)

#: Accepted ``action`` values of the ``clock`` op.
CLOCK_ACTIONS = ("pause", "resume", "step")


class ProtocolError(Exception):
    """A request the server must reject, with a machine-readable reason."""

    def __init__(self, reason: str, detail: str) -> None:
        super().__init__(detail)
        self.reason = reason
        self.detail = detail

    def to_response(self) -> dict:
        """The ``ok: false`` object answering the offending request."""
        return {"ok": False, "error": self.reason, "detail": self.detail}


def parse_request(line: bytes) -> Dict[str, Any]:
    """Decode one request line; raise :class:`ProtocolError` on garbage."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            REJECT_TOO_LARGE,
            f"request line exceeds {MAX_LINE_BYTES} bytes",
        )
    try:
        data = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(REJECT_BAD_JSON, f"invalid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ProtocolError(
            REJECT_INVALID, "request must be a JSON object"
        )
    return data


def validate_request(data: Dict[str, Any]) -> Tuple[str, Dict[str, Any]]:
    """Check the envelope; return ``(op, payload)`` or raise."""
    op = data.get("op")
    if not isinstance(op, str):
        raise ProtocolError(REJECT_INVALID, "missing string field 'op'")
    if op not in OPS:
        raise ProtocolError(
            REJECT_UNKNOWN_OP,
            f"unknown op {op!r}; expected one of {', '.join(OPS)}",
        )
    payload = {k: v for k, v in data.items() if k != "op"}
    if op == "submit":
        job = payload.get("job")
        if not isinstance(job, dict):
            raise ProtocolError(
                REJECT_INVALID, "submit requires an object field 'job'"
            )
        deadline = job.get("deadline_s")
        if deadline is not None and (
            isinstance(deadline, bool)
            or not isinstance(deadline, (int, float))
            or deadline <= 0
        ):
            raise ProtocolError(
                REJECT_INVALID,
                "job.deadline_s must be a positive number when present",
            )
    elif op == "cancel":
        if not isinstance(payload.get("job_id"), str):
            raise ProtocolError(
                REJECT_INVALID, "cancel requires a string field 'job_id'"
            )
    elif op == "clock":
        action = payload.get("action")
        if action not in CLOCK_ACTIONS:
            raise ProtocolError(
                REJECT_INVALID,
                f"clock action must be one of {', '.join(CLOCK_ACTIONS)}",
            )
        if action == "step" and not isinstance(
            payload.get("to_s"), (int, float)
        ):
            raise ProtocolError(
                REJECT_INVALID,
                "clock step requires a numeric field 'to_s'",
            )
        speedup = payload.get("speedup")
        if speedup is not None and (
            not isinstance(speedup, (int, float)) or speedup < 0
        ):
            raise ProtocolError(
                REJECT_INVALID,
                "clock speedup must be a non-negative number "
                "(0 = as fast as possible)",
            )
    return op, payload


def encode_response(response: dict) -> bytes:
    """One response object as one JSONL line."""
    return (json.dumps(response) + "\n").encode("utf-8")
