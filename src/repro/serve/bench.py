"""Serve-path benchmark: sustained online submission over a real socket.

Where ``repro bench`` measures the simulators' batch throughput, this
module measures the *service*: a :class:`~repro.serve.server.ServerThread`
hosts the full stack (asyncio server, online engine, unlimited virtual
clock), and the bench submits a generated trace over the line-JSON
socket at a fixed wall-clock arrival rate, then drains. The record
captures scheduling throughput (``decisions_per_sec`` — policy rounds
per wall second, the service's end-to-end figure of merit) and the
client-observable admission→first-placement latency percentiles.

Artifacts are schema-versioned ``BENCH_serve_<scenario>.json`` files in
the same spirit as :mod:`repro.perf.record`; the field-by-field
reference lives in ``docs/SERVE.md`` and is CI-synchronised by
``tools/check_obs_docs.py``.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path
from typing import Dict, List

from repro import units
from repro.cluster.hardware import Cluster
from repro.perf.record import MetricDelta, host_fingerprint, utc_now_iso
from repro.serve.client import ServeClient
from repro.serve.clock import VirtualClock
from repro.serve.engine import OnlineEngine, _percentile
from repro.serve.server import ServeServer, ServerThread
from repro.serve.services import ServiceStack
from repro.workloads.trace import (
    TraceConfig,
    arrival_rate_for_load,
    generate_trace,
)
from repro.workloads.trace_io import job_to_dict

#: Version of the ``ServeBenchRecord`` JSON layout.
#: v2 added ``decision_latency_p99_ms`` (the sliding-window p99 of the
#: scheduler's wall-clock decision latency).
SERVE_BENCH_SCHEMA_VERSION = 2


@dataclasses.dataclass(frozen=True)
class ServeBenchScenario:
    """One serve-bench configuration (trace + cluster + arrival rate)."""

    name: str
    simulator: str
    num_jobs: int
    num_gpus: int
    policy: str = "fifo"
    cache: str = "silod"
    seed: int = 42
    load: float = 1.5
    duration_median_s: float = 3600.0
    reschedule_interval_s: float = 600.0
    #: Wall-clock submission rate over the socket, jobs per second.
    arrival_rate_per_s: float = 400.0
    queue_limit: int = 1024

    def build_trace(self):
        """The submitted jobs (generated outside the timed region)."""
        cfg = TraceConfig(
            num_jobs=self.num_jobs,
            seed=self.seed,
            duration_median_s=self.duration_median_s,
        )
        cfg.mean_interarrival_s = arrival_rate_for_load(
            cfg, self.num_gpus, load=self.load
        )
        return generate_trace(cfg)

    def build_cluster(self) -> Cluster:
        """Same per-GPU ratios as the batch bench (§7.2)."""
        return Cluster.build(
            num_servers=max(1, self.num_gpus // 4),
            gpus_per_server=4,
            cache_per_server_mb=4 * units.gb(368.0),
            remote_io_mbps=units.gbps(8.0 * self.num_gpus / 100.0),
        )


#: The serve scenario catalogue (``repro bench --scenario serve_*``).
SERVE_SCENARIOS: Dict[str, ServeBenchScenario] = {
    s.name: s
    for s in (
        ServeBenchScenario(
            "serve_tiny", "fluid", num_jobs=40, num_gpus=16
        ),
        ServeBenchScenario(
            "serve_smoke", "fluid", num_jobs=120, num_gpus=64
        ),
    )
}


@dataclasses.dataclass
class ServeBenchRecord:
    """One serve measurement, as persisted in ``BENCH_serve_*.json``."""

    schema_version: int
    scenario: str
    policy: str
    cache: str
    simulator: str
    num_jobs: int
    num_gpus: int
    arrival_rate_per_s: float
    wall_time_s: float
    decisions_total: int
    decisions_per_sec: float
    admit_to_place_p50_ms: float
    admit_to_place_p99_ms: float
    decision_latency_p99_ms: float
    jobs_submitted: int
    jobs_finished: int
    created_utc: str
    host: Dict[str, str]

    def to_dict(self) -> dict:
        """JSON-safe representation, one key per schema field."""
        return dataclasses.asdict(self)


#: Field names in declaration order — the code half of the doc/code
#: schema sync (``tools/check_obs_docs.py`` vs ``docs/SERVE.md``).
SERVE_BENCH_FIELDS = tuple(
    f.name for f in dataclasses.fields(ServeBenchRecord)
)


def run_serve_scenario(spec: ServeBenchScenario) -> ServeBenchRecord:
    """Measure one scenario end to end over a real socket."""
    jobs = spec.build_trace()
    cluster = spec.build_cluster()
    stack = ServiceStack.build(
        spec.policy, spec.cache, queue_limit=spec.queue_limit
    )
    sim_kwargs = {}
    if spec.simulator == "fluid":
        sim_kwargs["reschedule_interval_s"] = spec.reschedule_interval_s
    engine = OnlineEngine(
        cluster,
        stack,
        clock=VirtualClock(),  # unlimited: process events as they land
        simulator=spec.simulator,
        **sim_kwargs,
    )
    thread = ServerThread(ServeServer(engine, port=0))
    host, port = thread.start()
    interarrival_s = 1.0 / spec.arrival_rate_per_s
    # Wall-clock by design: this is the measurement, not the simulation.
    # lint: disable=DET003
    t0 = time.perf_counter()
    try:
        with ServeClient(host, port) as client:
            for job in jobs:
                client.submit(job_to_dict(job))
                time.sleep(interarrival_s)  # lint: disable=DET003
            client.shutdown(drain=True)
        thread.join()
    finally:
        thread.stop(drain=False)
    # lint: disable=DET003
    wall_time_s = time.perf_counter() - t0

    samples: List[float] = sorted(engine.latency_samples_ms)
    decisions_total = engine.sim.sched_rounds
    return ServeBenchRecord(
        schema_version=SERVE_BENCH_SCHEMA_VERSION,
        scenario=spec.name,
        policy=spec.policy,
        cache=spec.cache,
        simulator=spec.simulator,
        num_jobs=spec.num_jobs,
        num_gpus=spec.num_gpus,
        arrival_rate_per_s=spec.arrival_rate_per_s,
        wall_time_s=wall_time_s,
        decisions_total=decisions_total,
        decisions_per_sec=(
            decisions_total / wall_time_s if wall_time_s > 0 else 0.0
        ),
        admit_to_place_p50_ms=_percentile(samples, 0.50),
        admit_to_place_p99_ms=_percentile(samples, 0.99),
        decision_latency_p99_ms=engine.decision_latency_p99_ms(),
        jobs_submitted=engine.jobs_submitted,
        jobs_finished=engine.jobs_finished,
        created_utc=utc_now_iso(),
        host=host_fingerprint(),
    )


def write_serve_record(record: ServeBenchRecord, path) -> Path:
    """Persist one record as pretty-printed, key-stable JSON."""
    path = Path(path)
    path.write_text(json.dumps(record.to_dict(), indent=2) + "\n")
    return path


def load_serve_record(path) -> ServeBenchRecord:
    """Load a ``BENCH_serve_*.json`` record, validating the schema."""
    raw = json.loads(Path(path).read_text())
    version = raw.get("schema_version")
    if version != SERVE_BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: serve bench schema version {version!r} is not the "
            f"supported {SERVE_BENCH_SCHEMA_VERSION}"
        )
    known = set(SERVE_BENCH_FIELDS)
    unknown = sorted(set(raw) - known)
    if unknown:
        raise ValueError(f"{path}: unknown serve bench fields {unknown}")
    missing = sorted(known - set(raw))
    if missing:
        raise ValueError(f"{path}: missing serve bench fields {missing}")
    return ServeBenchRecord(**raw)


def render_serve_record(record: ServeBenchRecord) -> str:
    """One human-readable summary line (mirrors the batch bench)."""
    return (
        f"{record.scenario}: serve/{record.simulator} "
        f"{record.num_jobs} jobs x {record.num_gpus} GPUs "
        f"@ {record.arrival_rate_per_s:,.0f}/s — "
        f"wall {record.wall_time_s:.2f}s, "
        f"{record.decisions_per_sec:,.1f} decisions/s, "
        f"admit→place p50 {record.admit_to_place_p50_ms:.1f} ms / "
        f"p99 {record.admit_to_place_p99_ms:.1f} ms, "
        f"decision p99 {record.decision_latency_p99_ms:.1f} ms, "
        f"{record.jobs_finished}/{record.jobs_submitted} finished"
    )


# ----------------------------------------------------------------------
# Comparison (``repro bench --compare`` on serve baselines).
# ----------------------------------------------------------------------

#: Identity anchors that must match exactly for two serve records to be
#: comparable at all (wall-clock noise never moves these).
SERVE_ANCHOR_METRICS = ("num_jobs", "jobs_submitted", "jobs_finished")
#: Metrics where bigger is better.
SERVE_THROUGHPUT_METRICS = ("decisions_per_sec",)
#: Metrics where smaller is better (regression = rise above baseline).
SERVE_COST_METRICS = (
    "wall_time_s",
    "admit_to_place_p50_ms",
    "admit_to_place_p99_ms",
    "decision_latency_p99_ms",
)


def compare_serve_records(
    current: ServeBenchRecord,
    baseline: ServeBenchRecord,
    threshold: float,
) -> List[MetricDelta]:
    """Per-metric deltas of ``current`` against a serve baseline.

    Same contract as :func:`repro.perf.record.compare_records` — anchor
    disagreement is drift, throughput regresses on a drop, cost (wall
    time, latency percentiles) regresses on a rise beyond ``threshold``.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    for field in ("scenario", "simulator", "policy", "cache", "num_gpus"):
        mine, theirs = getattr(current, field), getattr(baseline, field)
        if mine != theirs:
            raise ValueError(
                f"cannot compare: {field} differs "
                f"(current={mine!r}, baseline={theirs!r})"
            )
    deltas: List[MetricDelta] = []
    for metric in SERVE_ANCHOR_METRICS:
        base = float(getattr(baseline, metric))
        cur = float(getattr(current, metric))
        deltas.append(
            MetricDelta(
                metric=metric,
                baseline=base,
                current=cur,
                ratio=(cur / base) if base else None,
                regressed=False,
                drift=abs(cur - base) > 1e-9 * max(1.0, abs(base)),
            )
        )
    for metric in SERVE_THROUGHPUT_METRICS:
        base = float(getattr(baseline, metric))
        cur = float(getattr(current, metric))
        deltas.append(
            MetricDelta(
                metric=metric,
                baseline=base,
                current=cur,
                ratio=(cur / base) if base else None,
                regressed=cur < base * (1.0 - threshold),
            )
        )
    for metric in SERVE_COST_METRICS:
        base = float(getattr(baseline, metric))
        cur = float(getattr(current, metric))
        deltas.append(
            MetricDelta(
                metric=metric,
                baseline=base,
                current=cur,
                ratio=(cur / base) if base else None,
                regressed=base > 0 and cur > base * (1.0 + threshold),
            )
        )
    return deltas
