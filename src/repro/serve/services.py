"""Blox-style service decomposition of the online run path.

The batch runner couples policy, estimator, and cache into a single
``(scheduler, cache_system)`` pair. The service splits the same machinery
into four named components — mirroring the modular scheduler decomposition
of Blox (Agarwal et al.) — so each can be inspected, swapped, and metered
independently while still executing the exact SiloD co-design:

* :class:`AdmissionQueue` — bounded admission with reject-with-reason
  backpressure (``queue_full``, ``duplicate_id``, ``shutting_down``);
* :class:`EstimatorService` — the throughput model (SiloDPerf) behind
  every placement decision;
* :class:`PlacementService` — the policy + joint-allocation step
  (Algorithm 1), owning the :class:`~repro.core.silod.SiloDScheduler`;
* :class:`CacheAllocService` — the cache subsystem, exposing the
  incremental :meth:`~repro.cache.base.CacheSystem.reallocate` entry
  point that re-runs the SiloD cache/IO split on every admission epoch.

:meth:`ServiceStack.build` constructs all four from registry names with
the paper's coupling rule (``silod`` cache ⇒ storage-aware policy), so
``serve --policy X --cache Y`` accepts exactly what the batch CLI does.
The stack's scheduler/cache objects are *the* objects the simulator
runs — the services are structure, not copies.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cache.base import CacheSystem
from repro.core.estimator import SiloDPerfEstimator
from repro.core.silod import SiloDScheduler
from repro.serve.protocol import (
    REJECT_DUPLICATE,
    REJECT_QUEUE_FULL,
    REJECT_SHUTTING_DOWN,
)
from repro.sim.runner import make_system


class AdmissionQueue:
    """Bounded admission control with machine-readable rejections.

    Tracks jobs from accepted submission until first placement
    (``job_start``). ``try_admit`` either accepts (returns ``None``) or
    answers with one of the protocol reject reasons; the caller emits the
    corresponding ``job_reject`` event so backpressure is observable.
    """

    def __init__(self, limit: int = 64) -> None:
        if limit < 1:
            raise ValueError("admission queue limit must be >= 1")
        self.limit = int(limit)
        #: job_id -> wall-clock submit instant (perf-counter seconds),
        #: used by the engine for admission-to-placement latency.
        self._waiting: Dict[str, float] = {}
        self._seen: set = set()
        self._draining = False
        self.accepted_total = 0
        self.rejected_total = 0

    @property
    def depth(self) -> int:
        """Jobs admitted but not yet placed."""
        return len(self._waiting)

    @property
    def draining(self) -> bool:
        """Whether admission has been closed for shutdown."""
        return self._draining

    def start_drain(self) -> None:
        """Stop accepting new work; queued jobs keep flowing."""
        self._draining = True

    def try_admit(self, job_id: str, wall_s: float) -> Optional[str]:
        """Admit ``job_id`` or return the protocol reject reason."""
        if self._draining:
            self.rejected_total += 1
            return REJECT_SHUTTING_DOWN
        if job_id in self._seen:
            self.rejected_total += 1
            return REJECT_DUPLICATE
        if len(self._waiting) >= self.limit:
            self.rejected_total += 1
            return REJECT_QUEUE_FULL
        self._seen.add(job_id)
        self._waiting[job_id] = wall_s
        self.accepted_total += 1
        return None

    def mark_placed(self, job_id: str) -> Optional[float]:
        """Record first placement; returns the submit wall instant."""
        return self._waiting.pop(job_id, None)

    def discard(self, job_id: str) -> None:
        """Drop a waiting job (cancellation before placement)."""
        self._waiting.pop(job_id, None)


class EstimatorService:
    """The throughput model every placement decision consults."""

    def __init__(self, estimator: SiloDPerfEstimator) -> None:
        self.estimator = estimator

    @property
    def name(self) -> str:
        """Class name of the live estimator."""
        return type(self.estimator).__name__


class PlacementService:
    """Policy + joint allocation (Algorithm 1), owning the scheduler."""

    def __init__(self, scheduler: SiloDScheduler) -> None:
        self.scheduler = scheduler

    @property
    def policy_name(self) -> str:
        """Registry name of the live scheduling policy."""
        return self.scheduler.policy.name

    @property
    def storage_aware(self) -> bool:
        """Whether the policy runs Algorithm 1's joint allocation."""
        return self.scheduler.storage_aware

    @property
    def default_generation(self) -> str:
        """Reference GPU generation jobs run on absent a pool choice."""
        return self.scheduler.default_generation

    @property
    def gpu_pools(self) -> Optional[Dict[str, int]]:
        """Per-generation GPU counts, or ``None`` on homogeneous fleets."""
        pools = self.scheduler.gpu_pools
        return dict(pools) if pools else None

    @property
    def heterogeneity_aware(self) -> bool:
        """Whether the live policy scales f* by GPU generation."""
        return bool(
            getattr(self.scheduler.policy, "heterogeneity_aware", False)
        )


class CacheAllocService:
    """The cache subsystem behind incremental re-allocation.

    The simulator calls :meth:`CacheSystem.reallocate` on every admission
    epoch (arrival, completion, reschedule tick, fault); this service
    names that dependency so ``serve`` can report which cache system is
    live and swap it via the registry.
    """

    def __init__(self, cache_system: CacheSystem) -> None:
        self.cache_system = cache_system

    @property
    def name(self) -> str:
        """Class name of the live cache system."""
        return type(self.cache_system).__name__


class ServiceStack:
    """The four services plus the identity of the configuration."""

    def __init__(
        self,
        policy: str,
        cache: str,
        admission: AdmissionQueue,
        estimator: EstimatorService,
        placement: PlacementService,
        cache_alloc: CacheAllocService,
    ) -> None:
        self.policy = policy
        self.cache = cache
        self.admission = admission
        self.estimator = estimator
        self.placement = placement
        self.cache_alloc = cache_alloc

    @classmethod
    def build(
        cls,
        policy: str,
        cache: str,
        queue_limit: int = 64,
        cache_kwargs: Optional[dict] = None,
    ) -> "ServiceStack":
        """Build the stack from registry names with the coupling rule."""
        scheduler, cache_system = make_system(policy, cache, cache_kwargs)
        return cls(
            policy=policy,
            cache=cache,
            admission=AdmissionQueue(limit=queue_limit),
            estimator=EstimatorService(scheduler.estimator),
            placement=PlacementService(scheduler),
            cache_alloc=CacheAllocService(cache_system),
        )

    def describe(self) -> dict:
        """Service-by-service identity for ``status`` responses."""
        return {
            "admission": {
                "limit": self.admission.limit,
                "depth": self.admission.depth,
                "accepted_total": self.admission.accepted_total,
                "rejected_total": self.admission.rejected_total,
                "draining": self.admission.draining,
            },
            "estimator": {"kind": self.estimator.name},
            "placement": {
                "policy": self.placement.policy_name,
                "storage_aware": self.placement.storage_aware,
                "heterogeneity_aware": self.placement.heterogeneity_aware,
                "default_generation": self.placement.default_generation,
                "gpu_pools": self.placement.gpu_pools,
            },
            "cache_alloc": {
                "cache": self.cache,
                "kind": self.cache_alloc.name,
            },
        }
