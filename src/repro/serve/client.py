"""Synchronous client for a running ``python -m repro serve``.

A thin, dependency-free socket wrapper over the line-JSON protocol:
one :class:`ServeClient` holds one connection, each method sends one
request and returns the decoded response object. Methods raise
:class:`ServeError` when the server answers ``ok: false``, so scripts
can write straight-line code::

    with ServeClient("127.0.0.1", 7171) as c:
        c.submit(job_to_dict(job))
        c.clock("resume", speedup=0)
        print(c.status()["jobs_finished"])
        c.shutdown(drain=True)

``tail()`` opens a *separate* subscriber connection and yields events
as dicts (the ``save_events`` JSONL layout) until the server closes —
the transport behind ``python -m repro report --tail``.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, Iterator, Optional

from repro.serve.protocol import MAX_LINE_BYTES, PROTOCOL_VERSION


class ServeError(RuntimeError):
    """The server answered ``ok: false``."""

    def __init__(self, reason: str, detail: str) -> None:
        super().__init__(f"{reason}: {detail}")
        self.reason = reason
        self.detail = detail


class ServeClient:
    """One request/response connection to a serve instance."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 7171,
        timeout_s: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._file = self._sock.makefile("rwb")
        hello = self._read_line()
        if hello.get("kind") != "repro-serve":
            raise ServeError("bad_hello", f"unexpected hello {hello!r}")
        if hello.get("v") != PROTOCOL_VERSION:
            raise ServeError(
                "bad_hello", f"unsupported protocol version {hello.get('v')}"
            )

    # ------------------------------------------------------------------

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Close the stream and the underlying socket."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def _read_line(self) -> dict:
        line = self._file.readline(MAX_LINE_BYTES + 4096)
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line.decode("utf-8"))

    def request(self, op: str, **payload) -> dict:
        """Send one raw request; raise :class:`ServeError` on rejection."""
        message = {"op": op}
        message.update(payload)
        self._file.write((json.dumps(message) + "\n").encode("utf-8"))
        self._file.flush()
        response = self._read_line()
        if not response.get("ok", False):
            raise ServeError(
                str(response.get("error", "unknown")),
                str(response.get("detail", "")),
            )
        return response

    # ------------------------------------------------------------------
    # Ops.
    # ------------------------------------------------------------------

    def ping(self) -> dict:
        """Liveness probe."""
        return self.request("ping")

    def submit(self, job: dict) -> dict:
        """Submit one trace-format job dict (``trace_io.job_to_dict``)."""
        return self.request("submit", job=job)

    def cancel(self, job_id: str, reason: str = "user") -> dict:
        """Cancel a queued or running job."""
        return self.request("cancel", job_id=job_id, reason=reason)

    def status(self) -> dict:
        """The service's current view (clock, jobs, services)."""
        return self.request("status")

    def metrics(self) -> dict:
        """Counter/gauge snapshot plus serve-level latency percentiles."""
        return self.request("metrics")

    def clock(
        self,
        action: str,
        to_s: Optional[float] = None,
        speedup: Optional[float] = None,
    ) -> dict:
        """``pause`` / ``resume`` / ``step`` the service's virtual clock."""
        payload: Dict[str, object] = {"action": action}
        if to_s is not None:
            payload["to_s"] = to_s
        if speedup is not None:
            payload["speedup"] = speedup
        return self.request("clock", **payload)

    def shutdown(self, drain: bool = True) -> dict:
        """Ask the server to exit; with ``drain`` it runs the backlog dry."""
        return self.request("shutdown", drain=drain)

    def tail(self) -> Iterator[dict]:
        """Subscribe on a fresh connection; yield event dicts until EOF.

        The first yielded object is the JSONL header
        (``{"v": 1, "kind": "repro-events"}``); every subsequent one is
        an ``Event.to_dict()`` payload, replayed history first, then
        live events as the service emits them.
        """
        sock = socket.create_connection((self.host, self.port), timeout=None)
        file = sock.makefile("rb")
        try:
            json.loads(file.readline().decode("utf-8"))  # hello
            sock.sendall(b'{"op": "subscribe"}\n')
            ack = json.loads(file.readline().decode("utf-8"))
            if not ack.get("ok", False):
                raise ServeError(
                    str(ack.get("error", "unknown")),
                    str(ack.get("detail", "")),
                )
            for raw in file:
                raw = raw.strip()
                if raw:
                    yield json.loads(raw.decode("utf-8"))
        finally:
            file.close()
            sock.close()
