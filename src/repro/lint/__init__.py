"""``repro.lint``: an AST-based invariant linter for the reproduction.

SiloD's headline claim rests on invariants that ordinary test suites
cannot see: both simulators must stay byte-identical under the same
seed, every quantity must follow the internal unit convention (MB,
MB/s, seconds — :mod:`repro.units`), the structured event log must
match the schema in :mod:`repro.obs.events`, and scheduling policies
must stay behind the :class:`~repro.core.policies.base.SchedulingPolicy`
interface. ``repro.lint`` turns those conventions into machine-checked
rules: it parses the source tree with :mod:`ast` and runs pluggable
passes, each reporting ``(file, line, rule-id, message)`` findings.

Entry points
------------
* ``python -m repro lint`` — the CLI subcommand (text or JSON output,
  ``--strict`` for CI);
* :func:`lint_paths` — the library API used by the tests;
* ``docs/LINT.md`` — the rule catalogue and the guide for adding a pass.

Findings can be silenced inline (``# lint: disable=RULE``) or recorded
in a checked-in baseline file (``tools/lint_baseline.json``) while a
violation is being burned down; the repo itself lints clean with an
empty baseline.
"""

from repro.lint.baseline import Baseline
from repro.lint.cache import IndexCache, default_cache_path
from repro.lint.callgraph import CallGraph
from repro.lint.engine import (
    LintPass,
    ProjectIndex,
    ProjectPass,
    SourceFile,
    default_target,
    discover_files,
    lint_paths,
)
from repro.lint.findings import RULES, Finding
from repro.lint.passes import ALL_PASSES, build_passes
from repro.lint.sarif import to_sarif, validate_min_sarif
from repro.lint.symbols import SymbolTable

__all__ = [
    "ALL_PASSES",
    "Baseline",
    "CallGraph",
    "Finding",
    "IndexCache",
    "LintPass",
    "ProjectIndex",
    "ProjectPass",
    "RULES",
    "SourceFile",
    "SymbolTable",
    "build_passes",
    "default_cache_path",
    "default_target",
    "discover_files",
    "lint_paths",
    "to_sarif",
    "validate_min_sarif",
]
