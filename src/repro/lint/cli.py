"""The ``repro lint`` subcommand.

Wires the engine, pass registry, baseline, and index cache into
``python -m repro lint``. Exit code 0 means clean (after suppressions
and the baseline); 1 means new findings — and, under ``--strict``, also
a stale baseline entry, so CI can guarantee the baseline only ever
shrinks. ``--format sarif`` prints a SARIF 2.1.0 log for code hosts,
``--explain RULE`` prints the long-form rationale a finding's one-liner
cannot carry, and the whole-program phase is memoized in
``.lint_cache.json`` (disable with ``--no-cache``).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict, List

from repro.lint.baseline import Baseline
from repro.lint.cache import IndexCache, default_cache_path
from repro.lint.engine import default_target, lint_paths, repo_root
from repro.lint.findings import RULES, Finding
from repro.lint.passes import build_passes

#: Default baseline location, relative to the repository root.
DEFAULT_BASELINE = Path("tools") / "lint_baseline.json"

#: Explain-docs for findings the engine itself emits (no pass owns them).
_ENGINE_DOCS = {
    "PAR001": (
        "The engine could not parse this file as Python source\n"
        "(SyntaxError or undecodable bytes). The file is reported once\n"
        "and skipped, so one broken file cannot hide every other\n"
        "diagnostic in the run; the finding clears when the file\n"
        "parses again. PAR001 cannot be suppressed inline (comments in\n"
        "an unparseable file are unreachable) but can be baselined."
    ),
}


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``lint`` subcommand's arguments to ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="output format (default text)",
    )
    parser.add_argument(
        "--select",
        nargs="+",
        default=None,
        metavar="PASS|RULE",
        help="run only the named passes or rule prefixes "
        "(e.g. determinism UNI001 XDET)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline JSON of tolerated findings "
        f"(default {DEFAULT_BASELINE} if it exists)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on stale baseline entries (CI mode)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--explain",
        default=None,
        metavar="RULE",
        help="print the long-form explanation of one rule and exit",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the whole-program index cache (.lint_cache.json)",
    )
    parser.set_defaults(func=cmd_lint)


def _baseline_path(args: argparse.Namespace) -> Path:
    if args.baseline is not None:
        return Path(args.baseline)
    return repo_root() / DEFAULT_BASELINE


def _explain_docs() -> Dict[str, str]:
    """Rule id -> long-form doc, gathered from every shipped pass."""
    docs = dict(_ENGINE_DOCS)
    for instance in build_passes(None):
        docs.update(instance.docs)
    return docs


def _cmd_explain(rule: str) -> int:
    docs = _explain_docs()
    doc = docs.get(rule)
    if doc is None:
        known = ", ".join(sorted(RULES))
        print(f"error: unknown rule {rule!r} (known: {known})")
        return 2
    print(f"{rule}: {RULES.get(rule, '')}")
    print()
    print(doc)
    return 0


def _render_text(
    findings: List[Finding], stale: list, strict: bool
) -> str:
    lines = [f.render() for f in findings]
    for key in stale:
        prefix = "error" if strict else "warning"
        lines.append(
            f"{prefix}: stale baseline entry {key[1]} for {key[0]} "
            f"({key[2]!r} no longer fires); remove it from the baseline"
        )
    if findings:
        lines.append(f"{len(findings)} finding(s)")
    else:
        lines.append("clean")
    return "\n".join(lines)


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the linter; returns the process exit code."""
    if args.list_rules:
        width = max(len(rule) for rule in RULES)
        for rule, description in sorted(RULES.items()):
            print(f"{rule:<{width}}  {description}")
        return 0
    if args.explain is not None:
        return _cmd_explain(args.explain)
    try:
        passes = build_passes(args.select)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    paths = [Path(p) for p in args.paths] or [default_target()]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {[str(p) for p in missing]}")
        return 2
    cache = None if args.no_cache else IndexCache(default_cache_path())
    stats: Dict[str, int] = {}
    findings = lint_paths(paths, passes, cache=cache, stats=stats)
    baseline_path = _baseline_path(args)
    if args.write_baseline:
        Baseline.save(baseline_path, findings)
        print(
            f"baseline: {len(findings)} finding(s) -> {baseline_path}"
        )
        return 0
    baseline = Baseline.load(baseline_path)
    new, stale = baseline.apply(findings)
    if args.format == "sarif":
        from repro.lint.sarif import to_sarif

        print(json.dumps(to_sarif(new), indent=2))
    elif args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [f.to_dict() for f in new],
                    "baselined": len(findings) - len(new),
                    "stale_baseline": [list(key) for key in stale],
                    "unresolved_calls": stats.get("unresolved_calls"),
                },
                indent=2,
            )
        )
    else:
        print(_render_text(new, stale, args.strict))
    if new:
        return 1
    if stale and args.strict:
        return 1
    return 0
