"""Project-wide symbol table: phase 1 of the two-phase lint engine.

The per-file passes see one ``ast.Module`` at a time; the cross-module
passes (``XDET``/``XUNI``/``XOBS``) need to know *who defines what* and
*what a dotted name means* in any given module. :class:`SymbolTable`
indexes every :class:`~repro.lint.engine.SourceFile` into

* **modules** — dotted module names derived from the ``__init__.py``
  chain on disk (``src/repro/sim/fluid.py`` -> ``repro.sim.fluid``;
  a loose script like ``tools/serve_smoke.py`` -> ``serve_smoke``);
* **functions** — top-level functions *and* methods, keyed by their
  fully-qualified name (``repro.sim.fluid.FluidSimulator.step``);
* **classes** — with their raw base-name spellings so the call graph
  can walk ``self.``/``super()`` dispatch through a local MRO;
* **import aliases** — per module, the map from a local name to the
  qualified thing it denotes (``import numpy as np`` -> ``np`` ->
  ``numpy``; ``from repro.obs.tracer import Tracer as T`` -> ``T`` ->
  ``repro.obs.tracer.Tracer``), including relative imports;
* **registries** — module-level dict literals (``POLICIES = {...}``)
  whose values are names, so registry-style dispatch
  (``POLICIES[key](...)``) stays resolvable.

:meth:`SymbolTable.resolve` turns a dotted name as written in a module
into a fully-qualified name; :meth:`SymbolTable.resolve_method` walks a
class's local base chain. Both are deliberately *partial*: anything
they cannot prove returns ``None`` and the call graph records it in its
explicit unresolved-call category instead of guessing.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.lint.engine import SourceFile


@dataclasses.dataclass
class FunctionSymbol:
    """One function or method definition."""

    qname: str
    module: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    src: SourceFile
    class_qname: Optional[str] = None

    @property
    def name(self) -> str:
        """The bare (unqualified) function name."""
        return self.node.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionSymbol({self.qname!r})"


@dataclasses.dataclass
class ClassSymbol:
    """One class definition with its raw base spellings and methods."""

    qname: str
    module: str
    node: ast.ClassDef
    src: SourceFile
    base_names: List[str] = dataclasses.field(default_factory=list)
    methods: Dict[str, FunctionSymbol] = dataclasses.field(
        default_factory=dict
    )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClassSymbol({self.qname!r})"


@dataclasses.dataclass
class ModuleSymbols:
    """Everything the table knows about one module."""

    name: str
    src: SourceFile
    #: local name -> qualified target (``np`` -> ``numpy``).
    imports: Dict[str, str] = dataclasses.field(default_factory=dict)
    #: top-level function name -> symbol.
    functions: Dict[str, FunctionSymbol] = dataclasses.field(
        default_factory=dict
    )
    #: top-level class name -> symbol.
    classes: Dict[str, ClassSymbol] = dataclasses.field(
        default_factory=dict
    )
    #: module-level ``NAME = {...}`` dict literals (dispatch registries).
    registries: Dict[str, ast.Dict] = dataclasses.field(
        default_factory=dict
    )


def module_name_for(path: Path) -> str:
    """Dotted module name derived from the ``__init__.py`` chain.

    Walks upward while the parent directory is a package; a file outside
    any package keeps its bare stem (``tools/serve_smoke.py`` ->
    ``serve_smoke``). ``__init__.py`` itself names the package.
    """
    parts: List[str] = []
    if path.name != "__init__.py":
        parts.append(path.stem)
    current = path.parent
    while (current / "__init__.py").exists():
        parts.append(current.name)
        current = current.parent
    return ".".join(reversed(parts))


class SymbolTable:
    """The project-wide index of definitions and import aliases."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleSymbols] = {}
        self.functions: Dict[str, FunctionSymbol] = {}
        self.classes: Dict[str, ClassSymbol] = {}

    @classmethod
    def build(cls, files: Sequence[SourceFile]) -> "SymbolTable":
        """Index every parsed file into one table."""
        table = cls()
        for src in files:
            table._index_file(src)
        return table

    # -- construction --------------------------------------------------

    def _index_file(self, src: SourceFile) -> None:
        name = module_name_for(src.path)
        mod = ModuleSymbols(name=name, src=src)
        # Last writer wins on (unlikely) duplicate bare module names;
        # qualified package paths never collide.
        self.modules[name] = mod
        for stmt in src.tree.body:
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                self._index_import(mod, stmt)
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                self._index_function(mod, stmt, class_sym=None)
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(mod, stmt)
            elif isinstance(stmt, ast.Assign) and isinstance(
                stmt.value, ast.Dict
            ):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        mod.registries[target.id] = stmt.value
        # Imports may appear inside functions (lazy imports); index them
        # too so resolution inside those functions still works.
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                self._index_import(mod, node, overwrite=False)

    def _index_import(
        self, mod: ModuleSymbols, node: ast.AST, overwrite: bool = True
    ) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else local
                self._bind(mod, local, target, overwrite)
        elif isinstance(node, ast.ImportFrom):
            base = self._import_base(mod, node)
            if base is None:
                return
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                self._bind(
                    mod, local, f"{base}.{alias.name}", overwrite
                )

    @staticmethod
    def _bind(
        mod: ModuleSymbols, local: str, target: str, overwrite: bool
    ) -> None:
        if overwrite or local not in mod.imports:
            mod.imports[local] = target

    @staticmethod
    def _import_base(
        mod: ModuleSymbols, node: ast.ImportFrom
    ) -> Optional[str]:
        """Absolute base module of a (possibly relative) from-import."""
        if node.level == 0:
            return node.module
        parts = mod.name.split(".")
        # ``from . import x`` in package module a.b.c strips one level
        # (the module's own name); each extra dot strips a package.
        if len(parts) < node.level:
            return None
        base_parts = parts[: len(parts) - node.level]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts) if base_parts else None

    def _index_function(
        self,
        mod: ModuleSymbols,
        node: ast.AST,
        class_sym: Optional[ClassSymbol],
    ) -> None:
        if class_sym is None:
            qname = f"{mod.name}.{node.name}"
            symbol = FunctionSymbol(
                qname=qname, module=mod.name, node=node, src=mod.src
            )
            mod.functions[node.name] = symbol
        else:
            qname = f"{class_sym.qname}.{node.name}"
            symbol = FunctionSymbol(
                qname=qname,
                module=mod.name,
                node=node,
                src=mod.src,
                class_qname=class_sym.qname,
            )
            class_sym.methods[node.name] = symbol
        self.functions[qname] = symbol

    def _index_class(self, mod: ModuleSymbols, node: ast.ClassDef) -> None:
        qname = f"{mod.name}.{node.name}"
        from repro.lint.astutil import dotted_name

        base_names = [
            name
            for name in (dotted_name(base) for base in node.bases)
            if name is not None
        ]
        symbol = ClassSymbol(
            qname=qname,
            module=mod.name,
            node=node,
            src=mod.src,
            base_names=base_names,
        )
        mod.classes[node.name] = symbol
        self.classes[qname] = symbol
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(mod, stmt, class_sym=symbol)

    # -- resolution ----------------------------------------------------

    def resolve(self, module: str, dotted: str) -> Optional[str]:
        """Fully-qualified name for ``dotted`` as written in ``module``.

        Resolution is purely lexical: the head segment is looked up in
        the module's import aliases and top-level definitions, and the
        remaining segments are appended. The result may name a symbol
        outside the indexed project (``numpy.ndarray``); use
        :meth:`function` / :meth:`cls` to test project membership.
        """
        mod = self.modules.get(module)
        if mod is None:
            return None
        head, _, rest = dotted.partition(".")
        target: Optional[str] = None
        if head in mod.imports:
            target = mod.imports[head]
        elif head in mod.functions or head in mod.classes:
            target = f"{module}.{head}"
        elif head in mod.registries:
            target = f"{module}.{head}"
        if target is None:
            return None
        return f"{target}.{rest}" if rest else target

    def function(self, qname: Optional[str]) -> Optional[FunctionSymbol]:
        """The project function/method at ``qname``, if indexed."""
        if qname is None:
            return None
        return self.functions.get(qname)

    def cls(self, qname: Optional[str]) -> Optional[ClassSymbol]:
        """The project class at ``qname``, if indexed."""
        if qname is None:
            return None
        return self.classes.get(qname)

    def base_classes(self, symbol: ClassSymbol) -> List[ClassSymbol]:
        """``symbol``'s bases resolved through its module's imports."""
        out: List[ClassSymbol] = []
        for base_name in symbol.base_names:
            resolved = self.resolve(symbol.module, base_name)
            base = self.cls(resolved)
            if base is not None:
                out.append(base)
        return out

    def resolve_method(
        self, class_qname: str, method: str
    ) -> Optional[FunctionSymbol]:
        """Find ``method`` on a class or its (project-local) ancestors.

        Depth-first over the resolved base chain — a close-enough MRO
        for lint purposes. Returns ``None`` when the method must come
        from outside the indexed project.
        """
        seen = set()
        stack = [class_qname]
        while stack:
            qname = stack.pop(0)
            if qname in seen:
                continue
            seen.add(qname)
            symbol = self.cls(qname)
            if symbol is None:
                continue
            if method in symbol.methods:
                return symbol.methods[method]
            stack.extend(
                base.qname for base in self.base_classes(symbol)
            )
        return None
