"""Findings and the rule catalogue.

A :class:`Finding` is one diagnostic: ``(file, line, rule-id, message)``.
Rule ids are stable, grep-able handles (``DET001``, ``UNI002``, ...);
the catalogue below is the single source of truth for which ids exist
and what they mean — ``docs/LINT.md`` documents the same table for
humans, and the CLI's ``--list-rules`` prints it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

#: Every rule id with its one-line description, grouped by pass prefix.
#: ``DET`` — determinism, ``UNI`` — units, ``FLT`` — float equality,
#: ``OBS`` — event-schema conformance, ``POL`` — policy interface,
#: ``PERF`` — vectorization, ``PAR`` — the engine's own parse-failure
#: diagnostic, and the whole-program rules ``XDET``/``XUNI``/``XOBS``
#: (cross-module determinism taint, unit inference, emission scoping).
RULES: Dict[str, str] = {
    "PAR001": "file could not be parsed as Python source",
    "DET001": "unseeded RNG constructor (random.Random() / "
    "np.random.default_rng() with no seed)",
    "DET002": "use of the global `random` module state (module-level "
    "calls or `from random import <function>`)",
    "DET003": "wall-clock read (time.time / time.perf_counter / "
    "datetime.now) in simulation code",
    "DET004": "iteration over a set literal / set() value "
    "(order is salted per process)",
    "DET005": "builtin hash() (salted per process for str/bytes; use a "
    "stable digest such as zlib.crc32)",
    "UNI001": "magic unit-conversion constant outside repro.units "
    "(e.g. * 1024, * 125.0, / 8, / 60.0)",
    "UNI002": "public numeric parameter with a non-canonical unit "
    "suffix (use _mb / _mbps / _s / _gpus)",
    "FLT001": "== / != between float-typed expressions "
    "(event-time and unit-carrying values)",
    "OBS001": "emitted event type is not declared in repro.obs.events",
    "OBS002": "emitted event fields do not match the declared schema",
    "OBS003": "repro.obs.events schema is internally inconsistent "
    "(EVENT_TYPES vs EVENT_FIELDS drift)",
    "OBS004": "service-lifecycle event (SERVICE_TYPES) emitted outside "
    "repro/serve/ (only the online service narrates its own life)",
    "OBS005": "simulator-scoped event (SIMULATOR_SCOPED_TYPES) emitted "
    "outside repro/sim/ (provenance/SLO events must come from the "
    "shared simulator code path)",
    "POL001": "policy class does not implement the SchedulingPolicy "
    "interface (schedule() and a `name` attribute)",
    "POL002": "policy module imports simulator internals (repro.sim)",
    "POL003": "policy code reaches into another object's private "
    "attributes",
    "POL004": "heterogeneity-aware policy never publishes per-generation "
    "scores (ScheduleContext.gen_scores)",
    "PERF001": "per-item Python loop over cache state in a module that "
    "imports the vectorized helpers (use the store's bulk APIs)",
    "XDET001": "wall-clock read reaches an event emission, policy score, "
    "or simulator-state mutation through the call graph",
    "XDET002": "ambient RNG state (unseeded constructor, global random.*, "
    "id()) reaches emitted/recorded state through the call graph",
    "XDET003": "set-iteration order reaches emitted/recorded state "
    "through the call graph",
    "XUNI001": "mixed-unit arithmetic/comparison or suffix-mismatched "
    "assignment (units inferred across project calls)",
    "XUNI002": "argument's inferred unit does not match the callee "
    "parameter's declared unit (suffix or repro.units signature)",
    "XOBS001": "out-of-scope caller of a helper that directly emits a "
    "scope-restricted event (the OBS004/OBS005 wrapper loophole)",
}


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic produced by a lint pass.

    ``path`` is repo-relative (POSIX separators) so findings are stable
    across machines; ``line`` is 1-based. Findings sort by
    ``(path, line, rule, message)``, which gives reports and baselines a
    deterministic order.
    """

    path: str
    line: int
    rule: str
    message: str

    def key(self) -> Tuple[str, str, str]:
        """Line-insensitive identity used for baseline matching.

        Dropping the line number keeps a recorded baseline valid while
        unrelated edits shift code around the violation.
        """
        return (self.path, self.rule, self.message)

    def to_dict(self) -> dict:
        """JSON-safe representation (used by ``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }

    def render(self) -> str:
        """The human-readable one-liner: ``path:line: RULE message``."""
        return f"{self.path}:{self.line}: {self.rule} {self.message}"
