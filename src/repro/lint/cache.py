"""Content-hash memoization for the whole-program phase.

Phase 2 of the engine (symbol table + call graph + project passes) is
the expensive part of ``lint --strict``. Its result is a pure function
of (a) the bytes of every indexed file, (b) the set of project passes
and their rules, and (c) the engine version — so the cache key is a
single digest over exactly those, and a hit returns the previously
computed findings without building the index at all. Any edit to any
linted file changes the key and forces a clean recompute; there is no
per-file invalidation to get wrong.

The cache lives in one JSON file (default
``<repo>/.lint_cache.json``, gitignored) holding the most recent
:data:`_MAX_ENTRIES` keys so alternating targets (the CI lints
``src/repro tools benchmarks`` for text *and* SARIF output) both stay
warm. All I/O errors are swallowed: a broken or read-only cache means
a cold run, never a wrong result.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.lint.findings import Finding

#: Bump when index/pass semantics change in a way the key cannot see.
_CACHE_VERSION = 1

#: Most-recently-used keys kept in the cache file.
_MAX_ENTRIES = 4


def default_cache_path() -> Path:
    """The cache file next to the repo root."""
    from repro.lint.engine import repo_root

    return repo_root() / ".lint_cache.json"


class IndexCache:
    """One-file findings cache keyed by content hashes."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self.hits = 0
        self.misses = 0

    def key(self, sources: Sequence, project_passes: Sequence) -> str:
        """Digest of file contents + pass identities + engine version."""
        digest = hashlib.sha256()
        digest.update(f"v{_CACHE_VERSION}".encode())
        for src in sorted(sources, key=lambda s: s.rel_path):
            digest.update(src.rel_path.encode())
            digest.update(
                hashlib.sha256(src.text.encode("utf-8")).digest()
            )
        for project_pass in project_passes:
            digest.update(project_pass.name.encode())
            digest.update(",".join(project_pass.rules).encode())
        return digest.hexdigest()

    def load(self, key: str) -> Optional[Tuple[List[Finding], dict]]:
        """Memoized ``(findings, stats)`` for ``key``; ``None`` on miss."""
        entry = self._read().get(key)
        if entry is None:
            self.misses += 1
            return None
        try:
            findings = [
                Finding(
                    path=item["path"],
                    line=int(item["line"]),
                    rule=item["rule"],
                    message=item["message"],
                )
                for item in entry["findings"]
            ]
            stats = entry.get("stats") or {}
            if not isinstance(stats, dict):
                stats = {}
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return findings, stats

    def save(
        self, key: str, findings: Sequence[Finding], stats: dict
    ) -> None:
        """Record ``findings`` under ``key``, pruning old entries."""
        data = self._read()
        data.pop(key, None)
        data[key] = {
            "findings": [f.to_dict() for f in findings],
            "stats": dict(stats),
        }
        while len(data) > _MAX_ENTRIES:
            # dicts preserve insertion order: drop the oldest key.
            data.pop(next(iter(data)))
        try:
            self.path.write_text(
                json.dumps({"version": _CACHE_VERSION, "entries": data})
                + "\n",
                encoding="utf-8",
            )
        except OSError:
            pass  # read-only checkout: stay cold, stay correct.

    def _read(self) -> dict:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}
        if raw.get("version") != _CACHE_VERSION:
            return {}
        entries = raw.get("entries")
        return entries if isinstance(entries, dict) else {}
