"""The lint engine: source discovery, suppressions, and the pass runner.

The engine runs in two phases. Phase 1 finds ``.py`` files, parses each
one once into an :class:`ast.Module`, and hands the parsed
:class:`SourceFile` to every registered per-file pass
(:class:`LintPass`). Phase 2 — only when whole-program passes are
selected — indexes every file into a project-wide symbol table and call
graph (:class:`ProjectIndex`) and runs each :class:`ProjectPass` over
the index, so cross-module dataflow (a wall-clock read laundered
through a helper into an event emission) is visible. All analysis
lives in the passes (:mod:`repro.lint.passes`); findings from both
phases are filtered through the same inline-suppression table.

Suppression syntax
------------------
``# lint: disable=RULE`` (or ``disable=RULE1,RULE2`` / ``disable=all``)
on the offending line silences those rules for that line; a
comment-only line applies to the next code line *and the full span of
the statement starting there*, so multi-line statements can carry an
explanation (further comment lines may sit between the disable comment
and the code)::

    # Wall-clock is intentional here: latency_ms measures real time.
    # lint: disable=DET003
    t0 = time.perf_counter()
"""

from __future__ import annotations

import abc
import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.lint.findings import Finding

#: ``# lint: disable=DET001,UNI002`` — case-sensitive rule ids, or
#: the wildcard ``all``.
_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\s]+)")

#: Wildcard accepted in a disable list.
_ALL = "all"


def default_target() -> Path:
    """The tree linted when no paths are given: the ``repro`` package."""
    return Path(__file__).resolve().parent.parent


def repo_root() -> Path:
    """Best-effort repository root (``src/repro`` -> two levels up)."""
    return default_target().parent.parent


def _statement_spans(tree: ast.AST) -> Dict[int, int]:
    """Map each statement's start line to the last line it shields.

    Simple statements shield through ``end_lineno`` so a finding
    anchored on a later physical line of a multi-line call is still
    covered. Compound statements (``if``/``for``/``def``/...) shield
    only their header — through the line before the first body
    statement — because a block-level disable is deliberately not a
    thing (see ``docs/LINT.md``). Several statements starting on one
    line (``if x: y = 1``) take the widest span.
    """
    spans: Dict[int, int] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = getattr(node, "lineno", None)
        end = getattr(node, "end_lineno", None) or start
        if start is None:
            continue
        body = getattr(node, "body", None)
        if isinstance(body, list) and body:
            first = getattr(body[0], "lineno", start)
            end = max(start, first - 1)
        spans[start] = max(spans.get(start, start), end)
    return spans


def _parse_suppressions(
    lines: Sequence[str], tree: Optional[ast.AST] = None
) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the rule ids suppressed on them."""
    spans = _statement_spans(tree) if tree is not None else {}
    table: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        rules = {
            token.strip()
            for token in match.group(1).split(",")
            if token.strip()
        }
        target = lineno
        if line.lstrip().startswith("#"):
            # A standalone comment shields the next code line: walk
            # past further comment lines (an explanation may follow the
            # disable) and blank lines.
            target = lineno + 1
            while target <= len(lines):
                stripped = lines[target - 1].lstrip()
                if stripped and not stripped.startswith("#"):
                    break
                target += 1
        # Shield the whole statement starting at the target line, so a
        # finding anchored on a later line of a multi-line statement
        # does not escape the suppression.
        last = spans.get(target, target)
        for covered in range(target, last + 1):
            table.setdefault(covered, set()).update(rules)
    return table


class SourceFile:
    """One parsed source file plus its inline-suppression table."""

    def __init__(self, path: Path, display_root: Path) -> None:
        self.path = path
        self.rel_path = _display_path(path, display_root)
        self.text = path.read_text(encoding="utf-8")
        self.lines = self.text.splitlines()
        self.tree = ast.parse(self.text, filename=str(path))
        self.suppressions = _parse_suppressions(self.lines, self.tree)

    def is_suppressed(self, line: int, rule: str) -> bool:
        """Whether ``rule`` is disabled on ``line`` by an inline comment."""
        rules = self.suppressions.get(line)
        if not rules:
            return False
        return rule in rules or _ALL in rules

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        """Build a finding anchored at ``node``'s source line."""
        return Finding(
            path=self.rel_path,
            line=getattr(node, "lineno", 1),
            rule=rule,
            message=message,
        )


def _display_path(path: Path, display_root: Path) -> str:
    """Repo-relative POSIX path when possible, absolute otherwise."""
    resolved = path.resolve()
    for root in (display_root.resolve(), Path.cwd().resolve()):
        try:
            return resolved.relative_to(root).as_posix()
        except ValueError:
            continue
    return resolved.as_posix()


class LintPass(abc.ABC):
    """Base class for one per-file analysis pass.

    A pass declares the rule ids it can emit (``rules``), a
    rule-id-keyed ``docs`` table rendered by ``lint --explain``, and
    implements :meth:`run`, returning findings for one file. Passes
    must be stateless across files so the engine can run them in any
    order.
    """

    #: Short machine name used by ``--select`` (e.g. ``determinism``).
    name: str = "pass"

    #: The rule ids this pass can emit.
    rules: Sequence[str] = ()

    #: Rule id -> multi-line explanation for ``lint --explain RULE``.
    docs: Dict[str, str] = {}

    @abc.abstractmethod
    def run(self, src: SourceFile) -> List[Finding]:
        """Analyse one file and return its findings (may be empty)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class ProjectIndex:
    """The whole-program index handed to every :class:`ProjectPass`.

    Carries the parsed files, the symbol table, and the call graph;
    built once per run (phase 1) and shared by all project passes
    (phase 2). Construction is lazy-imported so per-file-only runs
    never pay for it.
    """

    def __init__(self, files: Sequence[SourceFile]) -> None:
        from repro.lint.callgraph import CallGraph
        from repro.lint.symbols import SymbolTable

        self.files: List[SourceFile] = list(files)
        self.by_rel_path: Dict[str, SourceFile] = {
            src.rel_path: src for src in self.files
        }
        self.table = SymbolTable.build(self.files)
        self.graph = CallGraph.build(self.table)

    def source(self, rel_path: str) -> Optional[SourceFile]:
        """The parsed file displayed as ``rel_path``, if indexed."""
        return self.by_rel_path.get(rel_path)

    def is_suppressed(self, rel_path: str, line: int, rule: str) -> bool:
        """Inline suppression lookup by display path (for chain edges)."""
        src = self.by_rel_path.get(rel_path)
        return src is not None and src.is_suppressed(line, rule)


class ProjectPass(abc.ABC):
    """Base class for one whole-program analysis pass (phase 2).

    Unlike :class:`LintPass`, a project pass sees the entire
    :class:`ProjectIndex` at once and may report findings in any file.
    Findings are still anchored to one ``(path, line)`` and filtered
    through that file's inline suppressions; passes that report
    source->sink chains additionally honour suppressions on any edge of
    the chain (see ``docs/LINT.md``).
    """

    #: Short machine name used by ``--select`` (e.g. ``xdet``).
    name: str = "project-pass"

    #: The rule ids this pass can emit.
    rules: Sequence[str] = ()

    #: Rule id -> multi-line explanation for ``lint --explain RULE``.
    docs: Dict[str, str] = {}

    @abc.abstractmethod
    def run_project(self, index: ProjectIndex) -> List[Finding]:
        """Analyse the whole index and return findings (may be empty)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


def discover_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated file list.

    Directories are walked recursively for ``*.py``; ``__pycache__``
    and hidden directories are skipped.
    """
    seen: Set[Path] = set()
    result: List[Path] = []
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            parts = candidate.parts
            if "__pycache__" in parts:
                continue
            if any(p.startswith(".") and len(p) > 1 for p in parts[1:]):
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                result.append(candidate)
    return result


def lint_paths(
    paths: Sequence[Path],
    passes: Sequence[object],
    display_root: Path = None,
    cache=None,
    stats: Optional[Dict[str, int]] = None,
) -> List[Finding]:
    """Run ``passes`` over ``paths`` and return sorted, unsuppressed findings.

    ``passes`` may mix per-file :class:`LintPass` and whole-program
    :class:`ProjectPass` instances; the engine partitions them, runs
    phase 1 (per-file) over each file, then — if any project pass is
    selected — builds the :class:`ProjectIndex` and runs phase 2.
    When ``cache`` (an :class:`repro.lint.cache.IndexCache`) is given,
    phase 2 results are memoized on the content hashes of every indexed
    file, so an unchanged tree skips index construction entirely.

    When ``stats`` is a dict, phase 2 records its soundness gap in it
    (``unresolved_calls``: call sites the graph could not resolve), so
    callers can report how much of the program the analysis proved.

    Unparseable files yield a single ``PAR001`` finding instead of
    aborting the run, so one syntax error cannot hide every other
    diagnostic.
    """
    if display_root is None:
        display_root = repo_root()
    file_passes = [p for p in passes if isinstance(p, LintPass)]
    project_passes = [p for p in passes if isinstance(p, ProjectPass)]
    findings: List[Finding] = []
    sources: List[SourceFile] = []
    for path in discover_files(paths):
        try:
            src = SourceFile(path, display_root)
        except (SyntaxError, UnicodeDecodeError) as exc:
            findings.append(
                Finding(
                    path=_display_path(path, display_root),
                    line=getattr(exc, "lineno", None) or 1,
                    rule="PAR001",
                    message=f"cannot parse: {exc.__class__.__name__}",
                )
            )
            continue
        sources.append(src)
        for lint_pass in file_passes:
            for finding in lint_pass.run(src):
                if not src.is_suppressed(finding.line, finding.rule):
                    findings.append(finding)
    if project_passes:
        findings.extend(
            _run_project_passes(sources, project_passes, cache, stats)
        )
    return sorted(findings)


def _run_project_passes(
    sources: Sequence[SourceFile],
    project_passes: Sequence[ProjectPass],
    cache,
    stats: Optional[Dict[str, int]] = None,
) -> List[Finding]:
    """Phase 2: build (or skip, on cache hit) the index and run passes."""
    key = None
    if cache is not None:
        key = cache.key(sources, project_passes)
        cached = cache.load(key)
        if cached is not None:
            findings, cached_stats = cached
            if stats is not None:
                stats.update(cached_stats)
            return findings
    index = ProjectIndex(sources)
    run_stats = {"unresolved_calls": len(index.graph.unresolved)}
    if stats is not None:
        stats.update(run_stats)
    findings: List[Finding] = []
    for project_pass in project_passes:
        for finding in project_pass.run_project(index):
            src = index.source(finding.path)
            if src is not None and src.is_suppressed(
                finding.line, finding.rule
            ):
                continue
            findings.append(finding)
    findings.sort()
    if cache is not None and key is not None:
        cache.save(key, findings, run_stats)
    return findings
