"""The lint engine: source discovery, suppressions, and the pass runner.

The engine is deliberately dumb: it finds ``.py`` files, parses each
one once into an :class:`ast.Module`, hands the parsed
:class:`SourceFile` to every registered pass, and filters the returned
findings through the inline-suppression table. All analysis lives in
the passes (:mod:`repro.lint.passes`).

Suppression syntax
------------------
``# lint: disable=RULE`` (or ``disable=RULE1,RULE2`` / ``disable=all``)
on the offending line silences those rules for that line; a
comment-only line applies to the next source line, so multi-clause
statements can carry an explanation::

    # Wall-clock is intentional here: latency_ms measures real time.
    # lint: disable=DET003
    t0 = time.perf_counter()
"""

from __future__ import annotations

import abc
import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set

from repro.lint.findings import Finding

#: ``# lint: disable=DET001,UNI002`` — case-sensitive rule ids, or
#: the wildcard ``all``.
_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\s]+)")

#: Wildcard accepted in a disable list.
_ALL = "all"


def default_target() -> Path:
    """The tree linted when no paths are given: the ``repro`` package."""
    return Path(__file__).resolve().parent.parent


def repo_root() -> Path:
    """Best-effort repository root (``src/repro`` -> two levels up)."""
    return default_target().parent.parent


def _parse_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the rule ids suppressed on them."""
    table: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        rules = {
            token.strip()
            for token in match.group(1).split(",")
            if token.strip()
        }
        target = lineno
        if line.lstrip().startswith("#"):
            # A standalone comment shields the line below it.
            target = lineno + 1
        table.setdefault(target, set()).update(rules)
    return table


class SourceFile:
    """One parsed source file plus its inline-suppression table."""

    def __init__(self, path: Path, display_root: Path) -> None:
        self.path = path
        self.rel_path = _display_path(path, display_root)
        self.text = path.read_text(encoding="utf-8")
        self.lines = self.text.splitlines()
        self.tree = ast.parse(self.text, filename=str(path))
        self.suppressions = _parse_suppressions(self.lines)

    def is_suppressed(self, line: int, rule: str) -> bool:
        """Whether ``rule`` is disabled on ``line`` by an inline comment."""
        rules = self.suppressions.get(line)
        if not rules:
            return False
        return rule in rules or _ALL in rules

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        """Build a finding anchored at ``node``'s source line."""
        return Finding(
            path=self.rel_path,
            line=getattr(node, "lineno", 1),
            rule=rule,
            message=message,
        )


def _display_path(path: Path, display_root: Path) -> str:
    """Repo-relative POSIX path when possible, absolute otherwise."""
    resolved = path.resolve()
    for root in (display_root.resolve(), Path.cwd().resolve()):
        try:
            return resolved.relative_to(root).as_posix()
        except ValueError:
            continue
    return resolved.as_posix()


class LintPass(abc.ABC):
    """Base class for one analysis pass.

    A pass declares the rule ids it can emit (``rules``) and implements
    :meth:`run`, returning findings for one file. Passes must be
    stateless across files so the engine can run them in any order.
    """

    #: Short machine name used by ``--select`` (e.g. ``determinism``).
    name: str = "pass"

    #: The rule ids this pass can emit.
    rules: Sequence[str] = ()

    @abc.abstractmethod
    def run(self, src: SourceFile) -> List[Finding]:
        """Analyse one file and return its findings (may be empty)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


def discover_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated file list.

    Directories are walked recursively for ``*.py``; ``__pycache__``
    and hidden directories are skipped.
    """
    seen: Set[Path] = set()
    result: List[Path] = []
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            parts = candidate.parts
            if "__pycache__" in parts:
                continue
            if any(p.startswith(".") and len(p) > 1 for p in parts[1:]):
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                result.append(candidate)
    return result


def lint_paths(
    paths: Sequence[Path],
    passes: Sequence[LintPass],
    display_root: Path = None,
) -> List[Finding]:
    """Run ``passes`` over ``paths`` and return sorted, unsuppressed findings.

    Unparseable files yield a single ``PAR001`` finding instead of
    aborting the run, so one syntax error cannot hide every other
    diagnostic.
    """
    if display_root is None:
        display_root = repo_root()
    findings: List[Finding] = []
    for path in discover_files(paths):
        try:
            src = SourceFile(path, display_root)
        except (SyntaxError, UnicodeDecodeError) as exc:
            findings.append(
                Finding(
                    path=_display_path(path, display_root),
                    line=getattr(exc, "lineno", None) or 1,
                    rule="PAR001",
                    message=f"cannot parse: {exc.__class__.__name__}",
                )
            )
            continue
        for lint_pass in passes:
            for finding in lint_pass.run(src):
                if not src.is_suppressed(finding.line, finding.rule):
                    findings.append(finding)
    return sorted(findings)
