"""SARIF 2.1.0 output for lint findings.

SARIF (Static Analysis Results Interchange Format) is the exchange
format code hosts and editors ingest for static-analysis results. We
emit the minimal valid subset — schema/version header, one run, a tool
driver with the rule catalogue, and one ``result`` per finding with a
``ruleId``, a ``message.text``, and a single physical location — which
is exactly what :func:`validate_min_sarif` checks, so the CI smoke test
and any external consumer agree on the contract.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.lint.findings import RULES, Finding

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_TOOL_NAME = "repro-lint"


def to_sarif(findings: Sequence[Finding]) -> dict:
    """A minimal SARIF 2.1.0 log dict for ``findings``."""
    rules_used = sorted({f.rule for f in findings})
    return {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": "docs/LINT.md",
                        "rules": [
                            {
                                "id": rule,
                                "shortDescription": {
                                    "text": RULES.get(rule, rule)
                                },
                            }
                            for rule in rules_used
                        ],
                    }
                },
                "results": [_result(f) for f in findings],
            }
        ],
    }


def _result(finding: Finding) -> dict:
    return {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {"startLine": finding.line},
                }
            }
        ],
    }


def validate_min_sarif(doc: dict) -> List[str]:
    """Problems that make ``doc`` fall short of minimal SARIF 2.1.0.

    Returns an empty list for a conforming log. Checks exactly the
    properties the spec marks required on the objects we emit: the
    top-level ``version``, ``runs`` with a ``tool.driver.name`` each,
    and per-result ``ruleId`` / ``message.text`` / location shape.
    """
    problems: List[str] = []
    if doc.get("version") != _SARIF_VERSION:
        problems.append(f"version must be {_SARIF_VERSION!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        return problems + ["runs must be a non-empty list"]
    for i, run in enumerate(runs):
        driver = run.get("tool", {}).get("driver", {})
        if not isinstance(driver.get("name"), str):
            problems.append(f"runs[{i}].tool.driver.name missing")
        for j, result in enumerate(run.get("results", [])):
            where = f"runs[{i}].results[{j}]"
            if not isinstance(result.get("ruleId"), str):
                problems.append(f"{where}.ruleId missing")
            if not isinstance(
                result.get("message", {}).get("text"), str
            ):
                problems.append(f"{where}.message.text missing")
            for k, loc in enumerate(result.get("locations", [])):
                phys = loc.get("physicalLocation", {})
                uri = phys.get("artifactLocation", {}).get("uri")
                start = phys.get("region", {}).get("startLine")
                if not isinstance(uri, str):
                    problems.append(
                        f"{where}.locations[{k}] artifact uri missing"
                    )
                if not isinstance(start, int) or start < 1:
                    problems.append(
                        f"{where}.locations[{k}] startLine invalid"
                    )
    return problems
