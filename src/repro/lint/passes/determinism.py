"""Determinism pass: same seed must mean same bytes.

Both simulators promise byte-identical event logs under the same seed
(the reproduction's core claim), so any ambient-entropy source in
library code is a reproducibility bug:

* ``DET001`` — unseeded RNG constructors (``random.Random()``,
  ``np.random.default_rng()``) seed from the OS;
* ``DET002`` — module-level ``random.*`` calls (and
  ``from random import shuffle``-style imports) share mutable global
  state across callers and test orderings;
* ``DET003`` — wall-clock reads (``time.time`` / ``time.perf_counter``
  / ``datetime.now``) differ run to run;
* ``DET004`` — iterating a set literal or ``set(...)`` value: string
  hashing is salted per process, so the order changes across runs;
* ``DET005`` — builtin ``hash()`` itself, for the same reason (use a
  stable digest such as ``zlib.crc32``).
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.astutil import call_name
from repro.lint.engine import LintPass, SourceFile
from repro.lint.findings import Finding

#: RNG constructors that must receive an explicit seed.
_RNG_CONSTRUCTORS = {
    "random.Random",
    "random.SystemRandom",
    "np.random.default_rng",
    "numpy.random.default_rng",
    "default_rng",
}

#: ``random.<fn>`` calls that mutate the interpreter-global RNG.
_GLOBAL_RANDOM_FUNCS = {
    "betavariate",
    "choice",
    "choices",
    "expovariate",
    "gauss",
    "getrandbits",
    "lognormvariate",
    "normalvariate",
    "paretovariate",
    "randint",
    "random",
    "randrange",
    "sample",
    "seed",
    "shuffle",
    "triangular",
    "uniform",
    "vonmisesvariate",
    "weibullvariate",
}

#: Wall-clock callees, matched on the dotted callee name.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
}

#: ``datetime``-family constructors matched on their final attribute,
#: provided the chain mentions datetime/date (so ``frame.now()`` on an
#: unrelated object is not flagged).
_DATETIME_NOW_ATTRS = {"now", "utcnow", "today"}


class DeterminismPass(LintPass):
    """Flag ambient entropy: unseeded RNGs, wall clocks, salted hashes."""

    name = "determinism"
    rules = ("DET001", "DET002", "DET003", "DET004", "DET005")

    docs = {
        "DET001": (
            "random.Random() / np.random.default_rng() with no\n"
            "argument seeds from the OS, so two runs of the simulator\n"
            "diverge immediately. Pass the experiment seed explicitly;\n"
            "every public entry point already threads one."
        ),
        "DET002": (
            "Module-level random.* calls (and `from random import\n"
            "shuffle`-style imports) share one interpreter-global RNG,\n"
            "so unrelated callers and test orderings perturb each\n"
            "other's streams. Thread a seeded random.Random instance\n"
            "through the call chain instead."
        ),
        "DET003": (
            "time.time / perf_counter / monotonic / datetime.now read\n"
            "the wall clock, which differs run to run. Simulation\n"
            "logic must derive every timestamp from the event clock;\n"
            "real-time measurement code (benchmark harnesses, the\n"
            "serve wall-clock driver) suppresses the line with a\n"
            "justification."
        ),
        "DET004": (
            "Iterating a set literal or set(...) value: str/bytes\n"
            "hashing is salted per process, so element order — and\n"
            "everything downstream of it — changes across runs. Use a\n"
            "tuple/list, or wrap in sorted(...)."
        ),
        "DET005": (
            "Builtin hash() is salted per process for str/bytes (see\n"
            "PYTHONHASHSEED), so hash-derived values are not\n"
            "reproducible. Use a stable digest such as zlib.crc32, or\n"
            "a stable sort key such as repr."
        ),
    }

    def run(self, src: SourceFile) -> List[Finding]:
        """Scan every call / import / loop in the file."""
        findings: List[Finding] = []
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(src, node))
            elif isinstance(node, ast.ImportFrom):
                findings.extend(self._check_import(src, node))
            elif isinstance(node, (ast.For, ast.comprehension)):
                findings.extend(self._check_iteration(src, node))
        return findings

    def _check_call(self, src: SourceFile, node: ast.Call) -> List[Finding]:
        name = call_name(node)
        out: List[Finding] = []
        if name is None:
            return out
        if name in _RNG_CONSTRUCTORS and not node.args and not node.keywords:
            out.append(
                src.finding(
                    node,
                    "DET001",
                    f"{name}() is unseeded; pass an explicit seed so "
                    "runs are reproducible",
                )
            )
        parts = name.split(".")
        if (
            len(parts) == 2
            and parts[0] == "random"
            and parts[1] in _GLOBAL_RANDOM_FUNCS
        ):
            out.append(
                src.finding(
                    node,
                    "DET002",
                    f"random.{parts[1]}() uses the global RNG; thread a "
                    "seeded random.Random instance instead",
                )
            )
        if name in _WALL_CLOCK:
            out.append(
                src.finding(
                    node,
                    "DET003",
                    f"{name}() reads the wall clock; simulation logic "
                    "must derive time from the event clock",
                )
            )
        elif parts[-1] in _DATETIME_NOW_ATTRS and any(
            p in ("datetime", "date") for p in parts[:-1]
        ):
            out.append(
                src.finding(
                    node,
                    "DET003",
                    f"{name}() reads the wall clock; simulation logic "
                    "must derive time from the event clock",
                )
            )
        if name == "hash" and len(node.args) == 1:
            out.append(
                src.finding(
                    node,
                    "DET005",
                    "builtin hash() is salted per process for str/bytes; "
                    "use a stable digest (e.g. zlib.crc32) instead",
                )
            )
        for kw in node.keywords:
            # ``sorted(..., key=hash)`` smuggles the salted hash in as a
            # callable without a direct call.
            if (
                kw.arg == "key"
                and isinstance(kw.value, ast.Name)
                and kw.value.id == "hash"
            ):
                out.append(
                    src.finding(
                        kw.value,
                        "DET005",
                        "builtin hash passed as a sort key is salted per "
                        "process for str/bytes; use a stable key "
                        "(e.g. repr) instead",
                    )
                )
        return out

    def _check_import(
        self, src: SourceFile, node: ast.ImportFrom
    ) -> List[Finding]:
        if node.module != "random":
            return []
        bad = [
            alias.name
            for alias in node.names
            if alias.name in _GLOBAL_RANDOM_FUNCS
        ]
        if not bad:
            return []
        return [
            src.finding(
                node,
                "DET002",
                f"importing {', '.join(bad)} from random binds the "
                "global RNG; import the module and thread a seeded "
                "random.Random instead",
            )
        ]

    def _check_iteration(self, src: SourceFile, node) -> List[Finding]:
        iterable = node.iter
        message = None
        if isinstance(iterable, (ast.Set, ast.SetComp)):
            message = (
                "iterating a set literal: element order is hash-salted "
                "per process; use a tuple/list or sorted(...)"
            )
        elif (
            isinstance(iterable, ast.Call)
            and call_name(iterable) in ("set", "frozenset")
        ):
            message = (
                "iterating a set(...) value: element order is "
                "hash-salted per process; wrap in sorted(...)"
            )
        if message is None:
            return []
        anchor = node if isinstance(node, ast.For) else iterable
        return [src.finding(anchor, "DET004", message)]
