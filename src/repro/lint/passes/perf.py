"""Perf pass: per-item Python sweeps over cache state in vectorized code.

The vectorization campaign (``docs/PERFORMANCE.md``) moved the
simulators' cache bookkeeping into bulk, array-friendly APIs
(``ResidencyStore.apply_targets`` / ``total_resident_mb`` / the job
table's masked sweeps). A module that imports the backend switch has
opted into that contract, so a hand-written ``for key in
store.keys(): ... store.resident_mb(key) ...`` loop there is a perf
bug waiting to scale: it re-introduces the O(keys)-per-event scalar
scans the campaign removed, and it silently bypasses the numpy path on
both backends.

``PERF001`` fires on a ``for`` loop in such a module when

* the iterable is a ``.keys()`` / ``.stale_first_keys()`` /
  ``.items()`` call on a receiver whose name marks it as cache state
  (``cache``, ``store``, ``resident``), and
* the loop body calls a per-key scalar accessor (``resident_mb``,
  ``snapshot``, ``set_resident_mb``, ...).

Deliberate scans (rare reclaim paths, per-sample reporting) carry a
``# lint: disable=PERF001`` line with a one-line justification.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.engine import LintPass, SourceFile
from repro.lint.findings import Finding

#: Importing any of these marks a module as vectorization-aware.
_VECTOR_MODULES = (
    "repro.perf.backend",
    "repro.perf",
)

#: Iterable-producing methods that enumerate cache state per key.
_SWEEP_METHODS = {"keys", "stale_first_keys", "items"}

#: Receiver-name fragments that identify cache state.
_CACHE_NAMES = ("cache", "store", "resident")

#: Per-key scalar accessors whose presence makes the loop a sweep.
_SCALAR_ACCESSORS = {
    "resident_mb",
    "target_mb",
    "size_mb",
    "snapshot",
    "set_resident_mb",
    "set_target_mb",
    "set_size_mb",
}


def _imports_vector_helpers(tree: ast.AST) -> bool:
    """Whether the module imports the vectorized-backend helpers."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith(_VECTOR_MODULES):
                    return True
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.module.startswith(_VECTOR_MODULES):
                return True
    return False


def _receiver_name(node: ast.AST) -> str:
    """Dotted-name tail of a call receiver (``self._cache`` -> ``_cache``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _is_cache_sweep_iterable(node: ast.AST) -> bool:
    """``<cache-ish receiver>.keys() / .stale_first_keys() / .items()``."""
    if not (isinstance(node, ast.Call) and
            isinstance(node.func, ast.Attribute)):
        return False
    if node.func.attr not in _SWEEP_METHODS:
        return False
    receiver = _receiver_name(node.func.value).lower()
    return any(frag in receiver for frag in _CACHE_NAMES)


def _body_hits_scalar_accessor(loop: ast.For) -> bool:
    """Whether the loop body calls a per-key scalar accessor."""
    for stmt in loop.body:
        for node in ast.walk(stmt):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _SCALAR_ACCESSORS):
                return True
    return False


class PerfPass(LintPass):
    """Flag scalar per-key cache sweeps in vectorization-aware modules."""

    name = "perf"
    rules = ("PERF001",)

    docs = {
        "PERF001": (
            "A for-loop over cache-state keys (store.keys() /\n"
            "stale_first_keys() / items()) whose body calls per-key\n"
            "scalar accessors, in a module that imports the vectorized\n"
            "backend helpers. That re-introduces the O(keys)-per-event\n"
            "scans the vectorization campaign removed; use the store's\n"
            "bulk APIs (apply_targets, total_resident_mb, masked\n"
            "sweeps). Deliberate rare-path scans suppress the line\n"
            "with a one-line justification."
        ),
    }

    def run(self, src: SourceFile) -> List[Finding]:
        """Scan every ``for`` loop once the module opts into the backend."""
        if not _imports_vector_helpers(src.tree):
            return []
        findings: List[Finding] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.For):
                continue
            if not _is_cache_sweep_iterable(node.iter):
                continue
            if not _body_hits_scalar_accessor(node):
                continue
            findings.append(
                src.finding(
                    node,
                    "PERF001",
                    "per-item Python loop over cache state in a "
                    "vectorized module; use the store's bulk APIs "
                    "(apply_targets / total_resident_mb / "
                    "clear_targets_except) or justify the scan with a "
                    "disable comment",
                )
            )
        return findings
