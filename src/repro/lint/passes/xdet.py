"""Cross-module determinism taint: entropy must not reach the record.

The per-file determinism rules (``DET001``–``DET005``) flag entropy
*sources* wherever they appear, but a source wrapped in a helper and
*consumed* three calls away is a worse bug: the wall-clock read happens
in a utility module, the value lands in a policy score or an emitted
event, and the two simulators stop being bit-identical without any one
file looking wrong. ``XDET001``–``XDET003`` are taint analyses over the
project call graph:

* **sources** — wall-clock reads (``XDET001``), unseeded/global RNG
  state and ``id()`` (``XDET002``), and set-iteration order
  (``XDET003``);
* **sinks** — event emission (``tracer.emit`` / typed tracer helpers),
  decision-provenance helpers (``repro.obs.prov``), policy-score
  publication (``ScheduleContext.job_scores`` / ``gen_scores``), and
  simulator-state mutators (``apply_targets`` / ``set_resident_mb`` /
  ``set_target_mb`` / ``reallocate``);
* **finding** — a function containing a sink can reach, through one or
  more *resolved* call edges, a function containing a source of the
  category. The message reports the full source->sink call chain.

Granularity is the function: a call to an entropy-tainted function is
assumed to let the entropy reach anything the caller does. That
over-approximates single functions (so a source and sink in the *same*
function is left to the per-file rules) and under-approximates
unresolved calls (the call graph's explicit soundness gap).

Suppression is per *site* and per *edge*: a source whose line already
suppresses its per-file twin rule (``DET003`` for wall-clock, ...) or
the XDET rule is sanctioned and taints nothing, and a chain is dropped
when any call edge on it carries ``# lint: disable=XDET00x``.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.astutil import call_name
from repro.lint.callgraph import iter_contexts
from repro.lint.engine import Finding, ProjectIndex, ProjectPass, SourceFile
from repro.lint.passes import determinism as det
from repro.lint.passes.obs_schema import _receiver_is_tracer

#: Longest source->sink chain the search follows.
_MAX_DEPTH = 15

#: Taint category -> (XDET rule, human description, per-file twin rules
#: whose suppression sanctions the source).
_CATEGORIES = {
    "wall_clock": (
        "XDET001",
        "wall-clock read",
        ("DET003",),
    ),
    "rng": (
        "XDET002",
        "ambient RNG state",
        ("DET001", "DET002"),
    ),
    "iter_order": (
        "XDET003",
        "set-iteration order",
        ("DET004",),
    ),
}

#: Attribute names whose call mutates simulator/cache state.
_STATE_MUTATORS = {
    "apply_targets",
    "set_resident_mb",
    "set_target_mb",
    "reallocate",
}

#: Attribute names that publish policy scores into ScheduleContext.
_SCORE_TARGETS = {"job_scores", "gen_scores"}

#: Qualified-name prefix of the decision-provenance helpers.
_PROV_PREFIX = "repro.obs.prov."


class _FunctionFacts:
    """Sources and sinks found directly inside one context."""

    def __init__(self, qname: str, src: SourceFile) -> None:
        self.qname = qname
        self.src = src
        #: category -> [(line, description)]
        self.sources: Dict[str, List[Tuple[int, str]]] = {}
        #: [(sink kind, line)]
        self.sinks: List[Tuple[str, int]] = []


class CrossDeterminismPass(ProjectPass):
    """Taint-style determinism: sources must not reach recorded state."""

    name = "xdet"
    rules = ("XDET001", "XDET002", "XDET003")

    docs = {
        "XDET001": (
            "A wall-clock read (time.time / perf_counter / monotonic /\n"
            "datetime.now) in one function flows, through one or more\n"
            "resolved call edges, into a function that emits events,\n"
            "publishes policy scores, or mutates simulator state. The\n"
            "per-file DET003 only sees the read; this rule sees the\n"
            "consumption. The finding message prints the full\n"
            "source->sink call chain; suppress the source line, the\n"
            "sink line, or any call edge on the chain with\n"
            "# lint: disable=XDET001 plus a justification. A source\n"
            "already carrying a DET003 suppression is sanctioned and\n"
            "taints nothing."
        ),
        "XDET002": (
            "Unseeded RNG state (random.Random() with no seed, global\n"
            "random.* calls) or the per-process id() builtin reaches an\n"
            "event emission, policy score, or simulator-state mutation\n"
            "through the call graph. Same chain reporting and\n"
            "suppression rules as XDET001; DET001/DET002 suppressions\n"
            "at the source sanction it."
        ),
        "XDET003": (
            "Iteration over a set (hash-salted order per process) in a\n"
            "helper feeds an event emission, policy score, or\n"
            "simulator-state mutation downstream. Same chain reporting\n"
            "and suppression rules as XDET001; a DET004 suppression at\n"
            "the source sanctions it."
        ),
    }

    def run_project(self, index: ProjectIndex) -> List[Finding]:
        facts = _collect_facts(index)
        findings: List[Finding] = []
        for fact in facts.values():
            if not fact.sinks:
                continue
            for category, (rule, desc, _twins) in _CATEGORIES.items():
                chain = _find_chain(index, facts, fact, category, rule)
                if chain is None:
                    continue
                source_fact, source_line, source_desc, path = chain
                sink_kind, sink_line = fact.sinks[0]
                rendered = _render_chain(fact, path, index)
                findings.append(
                    Finding(
                        path=fact.src.rel_path,
                        line=sink_line,
                        rule=rule,
                        message=(
                            f"{desc} ({source_desc}) at "
                            f"{source_fact.src.rel_path}:{source_line} "
                            f"reaches {sink_kind} in {_short(fact.qname)} "
                            f"via call chain {rendered}"
                        ),
                    )
                )
        return findings


def _collect_facts(index: ProjectIndex) -> Dict[str, "_FunctionFacts"]:
    from repro.obs import events

    facts: Dict[str, _FunctionFacts] = {}
    for mod in index.table.modules.values():
        for qname, _class_qname, node in iter_contexts(
            mod.name, mod.src
        ):
            fact = facts.setdefault(
                qname, _FunctionFacts(qname, mod.src)
            )
            _scan_context(fact, node, events)
    # Calls into the provenance helpers are sinks at the caller.
    for edge in index.graph.edges:
        if edge.callee.startswith(_PROV_PREFIX):
            fact = facts.get(edge.caller)
            if fact is not None:
                fact.sinks.append(("decision provenance", edge.line))
    for fact in facts.values():
        fact.sinks.sort(key=lambda item: item[1])
    return facts


def _scan_context(
    fact: _FunctionFacts, node: ast.AST, events
) -> None:
    src = fact.src
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            _scan_call(fact, child, events)
        elif isinstance(child, (ast.For, ast.comprehension)):
            line = _set_iteration_line(child)
            if line is not None:
                _add_source(
                    fact, "iter_order", line, "set iteration"
                )
        elif isinstance(child, (ast.Assign, ast.AugAssign)):
            targets = (
                child.targets
                if isinstance(child, ast.Assign)
                else [child.target]
            )
            for target in targets:
                if _is_score_target(target):
                    fact.sinks.append(
                        ("policy score", child.lineno)
                    )
    _ = src  # suppression checks happen in _add_source


def _scan_call(fact: _FunctionFacts, node: ast.Call, events) -> None:
    name = call_name(node)
    if name is not None:
        parts = name.split(".")
        if (
            name in det._RNG_CONSTRUCTORS
            and not node.args
            and not node.keywords
        ):
            _add_source(fact, "rng", node.lineno, f"{name}()")
        elif (
            len(parts) == 2
            and parts[0] == "random"
            and parts[1] in det._GLOBAL_RANDOM_FUNCS
        ):
            _add_source(fact, "rng", node.lineno, f"{name}()")
        elif name == "id" and len(node.args) == 1:
            _add_source(fact, "rng", node.lineno, "id()")
        if name in det._WALL_CLOCK:
            _add_source(fact, "wall_clock", node.lineno, f"{name}()")
        elif parts[-1] in det._DATETIME_NOW_ATTRS and any(
            p in ("datetime", "date") for p in parts[:-1]
        ):
            _add_source(fact, "wall_clock", node.lineno, f"{name}()")
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr == "emit":
            fact.sinks.append(("event emission", node.lineno))
        elif func.attr in events.EVENT_FIELDS and _receiver_is_tracer(
            func
        ):
            fact.sinks.append(("event emission", node.lineno))
        elif func.attr in _STATE_MUTATORS:
            fact.sinks.append(("simulator state", node.lineno))


def _set_iteration_line(node) -> Optional[int]:
    iterable = node.iter
    if isinstance(iterable, (ast.Set, ast.SetComp)):
        return iterable.lineno
    if isinstance(iterable, ast.Call) and call_name(iterable) in (
        "set",
        "frozenset",
    ):
        return iterable.lineno
    return None


def _is_score_target(target: ast.AST) -> bool:
    if isinstance(target, ast.Subscript):
        target = target.value
    return (
        isinstance(target, ast.Attribute)
        and target.attr in _SCORE_TARGETS
    )


def _add_source(
    fact: _FunctionFacts, category: str, line: int, desc: str
) -> None:
    rule, _desc, twins = _CATEGORIES[category]
    for sanction in (rule,) + twins:
        if fact.src.is_suppressed(line, sanction):
            return  # a human already blessed this source.
    fact.sources.setdefault(category, []).append((line, desc))


def _find_chain(
    index: ProjectIndex,
    facts: Dict[str, "_FunctionFacts"],
    sink_fact: "_FunctionFacts",
    category: str,
    rule: str,
):
    """Shortest resolved call chain from the sink's function to a source.

    Returns ``(source_fact, source_line, source_desc, edges)`` or
    ``None``. The chain must have at least one edge: a source inside
    the sink's own function is the per-file passes' business.
    """
    queue = deque([(sink_fact.qname, [])])
    seen = {sink_fact.qname}
    while queue:
        qname, path = queue.popleft()
        if len(path) >= _MAX_DEPTH:
            continue
        for edge in index.graph.callees(qname):
            if edge.callee in seen:
                continue
            if index.is_suppressed(edge.rel_path, edge.line, rule):
                continue  # per-edge suppression cuts the chain.
            seen.add(edge.callee)
            next_path = path + [edge]
            target = facts.get(edge.callee)
            if target is not None and target.sources.get(category):
                line, desc = target.sources[category][0]
                return target, line, desc, next_path
            queue.append((edge.callee, next_path))
    return None


def _short(qname: str) -> str:
    """Drop the shared ``repro.`` prefix for readable chain output."""
    return qname[6:] if qname.startswith("repro.") else qname


def _render_chain(
    sink_fact: "_FunctionFacts", edges: Sequence, index: ProjectIndex
) -> str:
    hops = [_short(sink_fact.qname)]
    for edge in edges:
        hops.append(
            f"{_short(edge.callee)} ({edge.rel_path}:{edge.line})"
        )
    return " -> ".join(hops)
