"""The pass registry.

Every shipped pass is listed in :data:`ALL_PASSES`; ``build_passes``
instantiates the selection the CLI asked for. The registry mixes
per-file :class:`~repro.lint.engine.LintPass` and whole-program
:class:`~repro.lint.engine.ProjectPass` subclasses — the engine
partitions them into its two phases. Adding a pass is three steps (see
``docs/LINT.md``): write the pass class in a new module here, register
its rule ids in :data:`repro.lint.findings.RULES`, and append the class
to :data:`ALL_PASSES`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.lint.passes.determinism import DeterminismPass
from repro.lint.passes.floateq import FloatEqualityPass
from repro.lint.passes.obs_schema import ObsSchemaPass
from repro.lint.passes.perf import PerfPass
from repro.lint.passes.policy import PolicyConformancePass
from repro.lint.passes.units import UnitsPass
from repro.lint.passes.xdet import CrossDeterminismPass
from repro.lint.passes.xobs import CrossObsScopePass
from repro.lint.passes.xuni import CrossUnitsPass

#: Every shipped pass, in report order: per-file first, then the
#: whole-program (phase 2) passes.
ALL_PASSES: Sequence[type] = (
    DeterminismPass,
    UnitsPass,
    FloatEqualityPass,
    ObsSchemaPass,
    PolicyConformancePass,
    PerfPass,
    CrossDeterminismPass,
    CrossUnitsPass,
    CrossObsScopePass,
)


def build_passes(
    select: Optional[Sequence[str]] = None,
) -> List[object]:
    """Instantiate the selected passes (all of them by default).

    ``select`` filters by pass name (``determinism``, ``xdet``, ...)
    or by rule-id prefix (``DET``, ``UNI001``, ``XOBS``). Unknown
    selectors raise ``ValueError`` so typos fail loudly.
    """
    if not select:
        return [cls() for cls in ALL_PASSES]
    chosen: List[object] = []
    unmatched = list(select)
    for cls in ALL_PASSES:
        instance = cls()
        for token in select:
            if token == instance.name or any(
                rule.startswith(token) for rule in instance.rules
            ):
                chosen.append(instance)
                unmatched = [t for t in unmatched if t != token]
                break
    if unmatched:
        raise ValueError(f"unknown pass/rule selector(s): {unmatched}")
    return chosen
