"""The pass registry.

Every shipped pass is listed in :data:`ALL_PASSES`; ``build_passes``
instantiates the selection the CLI asked for. Adding a pass is three
steps (see ``docs/LINT.md``): write a :class:`~repro.lint.engine.LintPass`
subclass in a new module here, register its rule ids in
:data:`repro.lint.findings.RULES`, and append the class to
:data:`ALL_PASSES`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Type

from repro.lint.engine import LintPass
from repro.lint.passes.determinism import DeterminismPass
from repro.lint.passes.floateq import FloatEqualityPass
from repro.lint.passes.obs_schema import ObsSchemaPass
from repro.lint.passes.perf import PerfPass
from repro.lint.passes.policy import PolicyConformancePass
from repro.lint.passes.units import UnitsPass

#: Every shipped pass, in report order.
ALL_PASSES: Sequence[Type[LintPass]] = (
    DeterminismPass,
    UnitsPass,
    FloatEqualityPass,
    ObsSchemaPass,
    PolicyConformancePass,
    PerfPass,
)


def build_passes(
    select: Optional[Sequence[str]] = None,
) -> List[LintPass]:
    """Instantiate the selected passes (all of them by default).

    ``select`` filters by pass name (``determinism``, ``units``, ...)
    or by rule-id prefix (``DET``, ``UNI001``). Unknown selectors raise
    ``ValueError`` so typos fail loudly.
    """
    if not select:
        return [cls() for cls in ALL_PASSES]
    chosen: List[LintPass] = []
    unmatched = list(select)
    for cls in ALL_PASSES:
        instance = cls()
        for token in select:
            if token == instance.name or any(
                rule.startswith(token) for rule in instance.rules
            ):
                chosen.append(instance)
                unmatched = [t for t in unmatched if t != token]
                break
    if unmatched:
        raise ValueError(f"unknown pass/rule selector(s): {unmatched}")
    return chosen
