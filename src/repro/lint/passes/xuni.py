"""Interprocedural unit inference: MB, MB/s, seconds — across calls.

The per-file units pass (``UNI001``/``UNI002``) polices the *spelling*
of the convention: no magic conversion constants, no non-canonical
suffixes in public signatures. It cannot see a value that is *born* in
milliseconds and *consumed* as seconds two modules away. The ``XUNI``
rules infer units and check their flow:

* a name carries the unit its suffix declares (``_mb`` -> MB,
  ``_mbps`` -> MB/s, ``_ms`` -> ms, ``_s`` -> s), whether it is a
  parameter, a local, or an attribute;
* a call to a :mod:`repro.units` helper has a known parameter unit and
  a known return unit (``units.gb`` takes GB, returns MB);
* a project function whose every ``return`` has one consistent
  inferred unit exports that unit to its callers (computed as a global
  fixpoint, so helpers that wrap helpers still resolve);
* arithmetic follows dimensions: ``MB/s * s -> MB``, ``MB / s ->
  MB/s``, ``MB / (MB/s) -> s``; adding or comparing two *different*
  known units is the bug ``XUNI001`` reports, and passing a value of
  one known unit where the callee's parameter declares another is
  ``XUNI002``.

Anything the inference cannot prove stays unitless and is never
flagged: a bare literal, an unknown call, a name without a suffix. A
name assigned two different units in one function is treated as
ambiguous and dropped. ``repro/units.py`` itself — whose whole job is
mixing units — is exempt.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.lint.astutil import dotted_name
from repro.lint.callgraph import iter_contexts
from repro.lint.engine import Finding, ProjectIndex, ProjectPass
from repro.lint.symbols import FunctionSymbol

#: Canonical-and-boundary units the inference can name.
#: Suffix order matters: longest first so ``latency_ms`` is ms, not s.
_SUFFIX_UNITS = (
    ("_mbps", "MB/s"),
    ("_mb", "MB"),
    ("_ms", "ms"),
    ("_s", "s"),
)

#: ``repro.units`` helper -> (parameter unit, return unit).
_HELPER_UNITS = {
    "gb": ("GB", "MB"),
    "tb": ("TB", "MB"),
    "mb_to_gb": ("MB", "GB"),
    "mb_to_tb": ("MB", "TB"),
    "gbps": ("Gbps", "MB/s"),
    "mbps_to_gbps": ("MB/s", "Gbps"),
    "minutes": ("min", "s"),
    "hours": ("h", "s"),
    "days": ("d", "s"),
    "weeks": ("wk", "s"),
    "seconds_to_minutes": ("s", "min"),
    "seconds_to_ms": ("s", "ms"),
    "ms_to_seconds": ("ms", "s"),
}

_UNITS_MODULE = "repro.units"

#: Builtins that pass their argument's unit through unchanged.
_UNIT_PRESERVING = ("min", "max", "abs", "sum", "float", "round")

#: A name bound to two different units: poisoned, never flagged.
_CONFLICT = "<conflict>"

#: Fixpoint iterations for cross-function return-unit propagation.
_FIXPOINT_ROUNDS = 3


class CrossUnitsPass(ProjectPass):
    """Infer units through assignments, returns, and call bindings."""

    name = "xuni"
    rules = ("XUNI001", "XUNI002")

    docs = {
        "XUNI001": (
            "Two expressions with different inferred units are added,\n"
            "subtracted, compared, or one is assigned to a name whose\n"
            "suffix declares the other unit (a seconds value stored in\n"
            "*_ms, an MB/s value added to an MB value). Units come from\n"
            "name suffixes (_mb/_mbps/_ms/_s), repro.units helper\n"
            "signatures, and return-unit inference across project\n"
            "calls; dimensional arithmetic (MB/s * s -> MB, MB / s ->\n"
            "MB/s) is understood and not flagged. Fix by converting\n"
            "with the named repro.units helper, or suppress the line\n"
            "with a justification if the mix is intentional."
        ),
        "XUNI002": (
            "A call passes a value of one inferred unit where the\n"
            "callee's parameter declares another — e.g. a *_mb local\n"
            "passed to units.gb() (which takes GB), or a *_ms value\n"
            "passed to a project function's *_s parameter. Bindings\n"
            "cover positional and keyword arguments; methods drop\n"
            "self/cls. Convert at the call site with the matching\n"
            "repro.units helper."
        ),
    }

    def run_project(self, index: ProjectIndex) -> List[Finding]:
        returns, envs = _infer_return_units(index)
        findings: List[Finding] = []
        for mod in index.table.modules.values():
            if mod.name == _UNITS_MODULE:
                continue
            for qname, _class_qname, node in iter_contexts(
                mod.name, mod.src
            ):
                checker = _Checker(index, mod.name, mod.src, returns)
                checker.check(node, envs.get(id(node)))
                findings.extend(checker.findings)
        return findings


def _suffix_unit(name: Optional[str]) -> Optional[str]:
    if not name:
        return None
    for suffix, unit in _SUFFIX_UNITS:
        if name.endswith(suffix) and len(name) > len(suffix):
            return unit
    return None


def _param_names(symbol: FunctionSymbol) -> List[str]:
    """Bindable parameter names, with self/cls dropped for methods."""
    args = symbol.node.args
    names = [a.arg for a in args.posonlyargs] + [
        a.arg for a in args.args
    ]
    if symbol.class_qname is not None and names and names[0] in (
        "self",
        "cls",
    ):
        names = names[1:]
    return names + [a.arg for a in args.kwonlyargs]


class _ContextInfo:
    """Pre-walked pieces of one context the fixpoint reuses per round."""

    def __init__(self, context: ast.AST) -> None:
        self.node_id = id(context)
        #: [(name-target, value)] from Assign/AnnAssign, in walk order.
        self.assigns: List[Tuple[ast.Name, ast.AST]] = []
        #: non-bare ``return`` value expressions.
        self.returns: List[ast.AST] = []
        #: param name -> suffix-declared unit.
        self.param_env: Dict[str, str] = {}
        args = getattr(context, "args", None)
        if args is not None:
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
            ):
                unit = _suffix_unit(arg.arg)
                if unit is not None:
                    self.param_env[arg.arg] = unit
        for node in ast.walk(context):
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            elif isinstance(node, ast.Return) and node.value is not None:
                self.returns.append(node.value)
                continue
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    self.assigns.append((target, value))


def _infer_return_units(
    index: ProjectIndex,
) -> Tuple[Dict[str, str], Dict[int, Dict[str, str]]]:
    """Fixpoint over project functions: qname -> consistent return unit.

    Also returns the final name->unit env per context (keyed by the
    context node's ``id``), so the checking walk does not re-derive it.
    """
    infos: List[Tuple[Optional[str], str, _ContextInfo]] = []
    for mod in index.table.modules.values():
        if mod.name == _UNITS_MODULE:
            continue
        for qname, _class_qname, node in iter_contexts(
            mod.name, mod.src
        ):
            symbol = index.table.functions.get(qname)
            exported = (
                qname if symbol is not None and symbol.node is node else None
            )
            infos.append((exported, mod.name, _ContextInfo(node)))
    returns: Dict[str, str] = {}
    envs: Dict[int, Dict[str, str]] = {}
    for _ in range(_FIXPOINT_ROUNDS):
        changed = False
        for qname, module, info in infos:
            env = _build_env(index, module, info, returns)
            envs[info.node_id] = env
            if qname is None:
                continue
            unit = _return_unit(index, module, info, env, returns)
            if unit is not None and returns.get(qname) != unit:
                returns[qname] = unit
                changed = True
        if not changed:
            break
    return returns, envs


def _return_unit(
    index: ProjectIndex,
    module: str,
    info: "_ContextInfo",
    env: Dict[str, str],
    returns: Dict[str, str],
) -> Optional[str]:
    unit: Optional[str] = None
    for value in info.returns:
        got = _unit_of(index, module, value, env, returns)
        if got is None:
            return None  # one unproven return poisons the whole unit.
        if unit is not None and got != unit:
            return None
        unit = got
    return unit


def _build_env(
    index: ProjectIndex,
    module: str,
    info: "_ContextInfo",
    returns: Dict[str, str],
) -> Dict[str, str]:
    """Name -> unit for one context: params, then assignment inference.

    Two rounds because assignment order is arbitrary under ``ast.walk``
    and one local may feed another; a name bound to conflicting units is
    poisoned.
    """
    env: Dict[str, str] = dict(info.param_env)
    for _ in range(2):
        for target, value in info.assigns:
            unit = _suffix_unit(target.id) or _unit_of(
                index, module, value, env, returns
            )
            if unit is None:
                continue
            known = env.get(target.id)
            if known is not None and known != unit:
                env[target.id] = _CONFLICT
            elif known != _CONFLICT:
                env[target.id] = unit
    return {k: v for k, v in env.items() if v != _CONFLICT}


def _unit_of(
    index: ProjectIndex,
    module: str,
    node: ast.AST,
    env: Dict[str, str],
    returns: Dict[str, str],
) -> Optional[str]:
    if isinstance(node, ast.Name):
        return env.get(node.id) or _suffix_unit(node.id)
    if isinstance(node, ast.Attribute):
        return _suffix_unit(node.attr)
    if isinstance(node, ast.UnaryOp):
        return _unit_of(index, module, node.operand, env, returns)
    if isinstance(node, ast.IfExp):
        a = _unit_of(index, module, node.body, env, returns)
        b = _unit_of(index, module, node.orelse, env, returns)
        return a if a == b else None
    if isinstance(node, ast.BinOp):
        left = _unit_of(index, module, node.left, env, returns)
        right = _unit_of(index, module, node.right, env, returns)
        return _combine(node.op, left, right)
    if isinstance(node, ast.Call):
        return _call_unit(index, module, node, env, returns)
    return None


def _combine(
    op: ast.operator, left: Optional[str], right: Optional[str]
) -> Optional[str]:
    if isinstance(op, (ast.Add, ast.Sub)):
        return left if left is not None and left == right else None
    if isinstance(op, ast.Mult):
        pair = {left, right}
        if pair == {"MB/s", "s"}:
            return "MB"
        return None
    if isinstance(op, ast.Div):
        if left == "MB" and right == "s":
            return "MB/s"
        if left == "MB" and right == "MB/s":
            return "s"
        return None
    return None


def _call_unit(
    index: ProjectIndex,
    module: str,
    node: ast.Call,
    env: Dict[str, str],
    returns: Dict[str, str],
) -> Optional[str]:
    name = dotted_name(node.func)
    if name is None:
        return None
    if name in _UNIT_PRESERVING and "." not in name:
        units = {
            _unit_of(index, module, arg, env, returns)
            for arg in node.args
        }
        units.discard(None)
        return units.pop() if len(units) == 1 else None
    resolved = index.table.resolve(module, name)
    if resolved is None:
        return None
    helper = _helper_for(resolved)
    if helper is not None:
        return helper[1]
    return returns.get(resolved)


def _helper_for(qname: str) -> Optional[Tuple[str, str]]:
    prefix = _UNITS_MODULE + "."
    if qname.startswith(prefix):
        return _HELPER_UNITS.get(qname[len(prefix):])
    return None


class _Checker:
    """Walk one context with a fixed env and collect XUNI findings."""

    def __init__(
        self,
        index: ProjectIndex,
        module: str,
        src,
        returns: Dict[str, str],
    ) -> None:
        self.index = index
        self.module = module
        self.src = src
        self.returns = returns
        self.findings: List[Finding] = []

    def check(
        self, context: ast.AST, env: Optional[Dict[str, str]] = None
    ) -> None:
        if env is None:
            env = _build_env(
                self.index,
                self.module,
                _ContextInfo(context),
                self.returns,
            )
        self.env = env
        for node in ast.walk(context):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                self._check_mix(node, node.left, node.right, "arithmetic")
            elif isinstance(node, ast.Compare):
                prev = node.left
                for comparator in node.comparators:
                    self._check_mix(node, prev, comparator, "comparison")
                    prev = comparator
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                self._check_assign(node)
            elif isinstance(node, ast.Call):
                self._check_call(node)

    def _unit(self, node: ast.AST) -> Optional[str]:
        return _unit_of(
            self.index, self.module, node, self.env, self.returns
        )

    def _check_mix(
        self, anchor: ast.AST, left: ast.AST, right: ast.AST, what: str
    ) -> None:
        a, b = self._unit(left), self._unit(right)
        if a is None or b is None or a == b:
            return
        self.findings.append(
            Finding(
                path=self.src.rel_path,
                line=getattr(anchor, "lineno", 1),
                rule="XUNI001",
                message=(
                    f"mixed-unit {what}: {a} vs {b}; convert with the "
                    "matching repro.units helper"
                ),
            )
        )

    def _check_assign(self, node: ast.AST) -> None:
        value = node.value
        if value is None:
            return
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        got = self._unit(value)
        if got is None:
            return
        for target in targets:
            declared = None
            if isinstance(target, ast.Name):
                declared = _suffix_unit(target.id)
            elif isinstance(target, ast.Attribute):
                declared = _suffix_unit(target.attr)
            if declared is not None and declared != got:
                self.findings.append(
                    Finding(
                        path=self.src.rel_path,
                        line=node.lineno,
                        rule="XUNI001",
                        message=(
                            f"{got} value assigned to a name declaring "
                            f"{declared}; convert with the matching "
                            "repro.units helper"
                        ),
                    )
                )

    def _check_call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is None:
            return
        resolved = self.index.table.resolve(self.module, name)
        if resolved is None:
            return
        helper = _helper_for(resolved)
        if helper is not None:
            expected = helper[0]
            for arg in node.args[:1]:
                got = self._unit(arg)
                if got is not None and got != expected:
                    self._arg_finding(
                        node, resolved, "value", got, expected
                    )
            return
        symbol = self.index.table.function(resolved)
        if symbol is None:
            klass = self.index.table.cls(resolved)
            if klass is None:
                return
            symbol = self.index.table.resolve_method(
                klass.qname, "__init__"
            )
            if symbol is None:
                return
        params = _param_names(symbol)
        bindings: List[Tuple[str, ast.AST]] = list(
            zip(params, node.args)
        )
        by_name = {p: p for p in params}
        for kw in node.keywords:
            if kw.arg is not None and kw.arg in by_name:
                bindings.append((kw.arg, kw.value))
        for param, arg in bindings:
            expected = _suffix_unit(param)
            if expected is None:
                continue
            got = self._unit(arg)
            if got is not None and got != expected:
                self._arg_finding(node, resolved, param, got, expected)

    def _arg_finding(
        self,
        node: ast.Call,
        callee: str,
        param: str,
        got: str,
        expected: str,
    ) -> None:
        self.findings.append(
            Finding(
                path=self.src.rel_path,
                line=node.lineno,
                rule="XUNI002",
                message=(
                    f"{got} value passed to parameter {param!r} of "
                    f"{callee}() which expects {expected}; convert "
                    "with the matching repro.units helper"
                ),
            )
        )
