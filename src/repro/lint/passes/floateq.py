"""Float-equality pass: ``==`` on event times and unit-carrying floats.

Event-time logic compares simulated clocks, byte counts, and bandwidth
shares — all accumulated floats, where exact equality silently turns
into "never true" (or worse, "true on one simulator, false on the
other") after a few additions. The codebase's idiom is an explicit
epsilon (``a < b - 1e-9``) or a tolerance helper.

``FLT001`` fires on an ``==`` / ``!=`` comparison when either operand
is a float literal (``x == 1.0``) or a name/attribute carrying a
float-unit suffix (``_s``, ``_mb``, ``_mbps``, ``_ms``, ``_ratio``) or
a known clock name (``ts_s``, ``now_s``, ``clock_s``, ``time_s``).
Integer literals and unsuffixed names are left alone, so sentinel
checks on counts stay legal.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.engine import LintPass, SourceFile
from repro.lint.findings import Finding

#: Name endings that mark a value as a float quantity by convention.
_FLOAT_SUFFIXES = ("_s", "_mb", "_mbps", "_ms", "_ratio")

#: Bare names that are simulated clocks.
_CLOCK_NAMES = {"ts_s", "now_s", "clock_s", "time_s"}


def _float_reason(node: ast.AST) -> Optional[str]:
    """Why this operand is float-typed, or ``None`` if it is not."""
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return f"float literal {node.value!r}"
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name is None:
        return None
    if name in _CLOCK_NAMES:
        return f"clock value {name!r}"
    for suffix in _FLOAT_SUFFIXES:
        if name.endswith(suffix) and len(name) > len(suffix):
            return f"unit-suffixed value {name!r}"
    return None


class FloatEqualityPass(LintPass):
    """Flag exact equality between float-typed expressions."""

    name = "floateq"
    rules = ("FLT001",)

    docs = {
        "FLT001": (
            "== / != between float-typed expressions — a float\n"
            "literal, a name with a float-unit suffix (_s, _mb, _mbps,\n"
            "_ms, _ratio), or a known clock name. Accumulated floats\n"
            "make exact equality silently 'never true', or true on one\n"
            "simulator and false on the other. Compare with an\n"
            "explicit tolerance (abs(a - b) < 1e-9, pytest.approx) or\n"
            "restructure to avoid the comparison."
        ),
    }

    def run(self, src: SourceFile) -> List[Finding]:
        """Scan every comparison chain in the file."""
        findings: List[Finding] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                reasons = [
                    r
                    for r in (
                        _float_reason(operands[i]),
                        _float_reason(operands[i + 1]),
                    )
                    if r
                ]
                if not reasons:
                    continue
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                findings.append(
                    src.finding(
                        node,
                        "FLT001",
                        f"exact {symbol} on {reasons[0]}; compare with "
                        "an explicit tolerance (abs(a - b) < 1e-9) or "
                        "restructure to avoid float equality",
                    )
                )
        return findings
