"""Policy-conformance pass: plug-ins stay behind the policy API.

Gavel-style policy plug-ins only compose safely when every policy is a
well-behaved :class:`~repro.core.policies.base.SchedulingPolicy`: it
implements ``schedule`` and declares a ``name``, and it talks to the
rest of the system only through the public interface — never by
importing a simulator or poking another object's privates.

The pass applies to modules under ``core/policies`` and to any module
that defines a ``SchedulingPolicy`` subclass:

* ``POL001`` — a policy class that neither defines nor locally inherits
  ``schedule`` / a ``name`` attribute;
* ``POL002`` — an import of ``repro.sim`` (simulator internals) from
  policy code;
* ``POL003`` — an attribute access ``obj._private`` where ``obj`` is
  not ``self``/``cls`` (reaching across an encapsulation boundary);
* ``POL004`` — a policy class declaring ``heterogeneity_aware = True``
  whose local class chain never references ``gen_scores``: a
  heterogeneity-aware policy must publish its per-generation compute
  bounds through ``ScheduleContext.gen_scores`` so decision provenance
  (``decision_job.f_star_gen_mbps``) can explain the placement.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.lint.astutil import dotted_name
from repro.lint.engine import LintPass, SourceFile
from repro.lint.findings import Finding

#: The interface base class policies must extend.
_BASE_NAME = "SchedulingPolicy"


def _base_names(cls: ast.ClassDef) -> List[str]:
    """Final path components of a class's base names."""
    names = []
    for base in cls.bases:
        name = dotted_name(base)
        if name is not None:
            names.append(name.split(".")[-1])
    return names


def _in_policies_package(src: SourceFile) -> bool:
    """True for files under ``core/policies``."""
    parts = src.path.parts
    for i in range(len(parts) - 1):
        if parts[i] == "core" and parts[i + 1] == "policies":
            return True
    return False


class PolicyConformancePass(LintPass):
    """Check SchedulingPolicy subclasses and policy-module hygiene."""

    name = "policy"
    rules = ("POL001", "POL002", "POL003", "POL004")

    docs = {
        "POL001": (
            "A SchedulingPolicy subclass that neither defines nor\n"
            "locally inherits schedule() and a `name` attribute.\n"
            "Policies compose (Gavel-style) only when every one\n"
            "implements the full interface."
        ),
        "POL002": (
            "Policy code imports repro.sim (simulator internals).\n"
            "Policies must see the cluster only through\n"
            "ScheduleContext; importing a simulator couples the policy\n"
            "to one backend and breaks the batch/serve equivalence."
        ),
        "POL003": (
            "Policy code reads another object's _private attribute\n"
            "(receiver is not self/cls). Reach-through makes the\n"
            "private state load-bearing; add a public accessor to the\n"
            "interface instead."
        ),
        "POL004": (
            "A policy declaring heterogeneity_aware = True never\n"
            "references gen_scores. Heterogeneity-aware policies must\n"
            "publish per-generation compute bounds through\n"
            "ScheduleContext.gen_scores so decision provenance\n"
            "(decision_job.f_star_gen_mbps) can explain placements."
        ),
    }

    def run(self, src: SourceFile) -> List[Finding]:
        """Scan the module if it is policy code; no-op otherwise."""
        classes: Dict[str, ast.ClassDef] = {
            node.name: node
            for node in src.tree.body
            if isinstance(node, ast.ClassDef)
        }
        policy_classes = _policy_closure(classes)
        if not policy_classes and not _in_policies_package(src):
            return []
        findings: List[Finding] = []
        findings.extend(self._check_imports(src))
        for name in sorted(policy_classes):
            findings.extend(
                self._check_interface(src, classes, classes[name])
            )
            findings.extend(
                self._check_het_publishes(src, classes, classes[name])
            )
        findings.extend(self._check_private_access(src))
        return findings

    def _check_imports(self, src: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(src.tree):
            module = None
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[:2] == ["repro", "sim"]:
                        module = alias.name
                        break
            if module and module.split(".")[:2] == ["repro", "sim"]:
                findings.append(
                    src.finding(
                        node,
                        "POL002",
                        f"policy code imports {module!r}; policies must "
                        "see the cluster only through ScheduleContext "
                        "and the estimator",
                    )
                )
        return findings

    def _check_interface(
        self,
        src: SourceFile,
        classes: Dict[str, ast.ClassDef],
        cls: ast.ClassDef,
    ) -> List[Finding]:
        missing = []
        if not _chain_defines(classes, cls, _defines_schedule):
            missing.append("schedule()")
        if not _chain_defines(classes, cls, _defines_name):
            missing.append("a `name` attribute")
        if not missing:
            return []
        return [
            src.finding(
                cls,
                "POL001",
                f"policy class {cls.name} is missing {' and '.join(missing)}"
                "; every SchedulingPolicy must implement both",
            )
        ]

    def _check_het_publishes(
        self,
        src: SourceFile,
        classes: Dict[str, ast.ClassDef],
        cls: ast.ClassDef,
    ) -> List[Finding]:
        ancestry = _local_ancestry(classes, cls)
        if not any(_declares_het_aware(c) for c in ancestry):
            return []
        if any(_references_gen_scores(c) for c in ancestry):
            return []
        return [
            src.finding(
                cls,
                "POL004",
                f"policy class {cls.name} declares "
                "heterogeneity_aware = True but never publishes "
                "per-generation scores via ScheduleContext.gen_scores",
            )
        ]

    def _check_private_access(self, src: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Attribute):
                continue
            attr = node.attr
            if not attr.startswith("_") or attr.startswith("__"):
                continue
            receiver = node.value
            if isinstance(receiver, ast.Name) and receiver.id in (
                "self",
                "cls",
            ):
                continue
            # ``super()._x`` is still self-dispatch, not a reach into
            # another object's internals.
            if (
                isinstance(receiver, ast.Call)
                and isinstance(receiver.func, ast.Name)
                and receiver.func.id == "super"
            ):
                continue
            findings.append(
                src.finding(
                    node,
                    "POL003",
                    f"access to private attribute {attr!r} of "
                    f"{dotted_name(receiver) or 'an expression'}; "
                    "policies must use public interfaces only",
                )
            )
        return findings


def _policy_closure(classes: Dict[str, ast.ClassDef]) -> Set[str]:
    """Names of classes whose local base chain reaches SchedulingPolicy."""
    policies: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, cls in classes.items():
            if name in policies:
                continue
            for base in _base_names(cls):
                if base == _BASE_NAME or base in policies:
                    policies.add(name)
                    changed = True
                    break
    return policies


def _chain_defines(
    classes: Dict[str, ast.ClassDef],
    cls: ast.ClassDef,
    predicate,
    seen: Optional[Set[str]] = None,
) -> bool:
    """Does ``cls`` or a module-local ancestor satisfy ``predicate``?

    Non-local bases other than ``SchedulingPolicy`` are assumed to
    provide the interface (cross-file resolution is out of scope and
    permissiveness avoids false positives).
    """
    seen = seen or set()
    if cls.name in seen:
        return False
    seen.add(cls.name)
    if predicate(cls):
        return True
    for base in _base_names(cls):
        if base == _BASE_NAME:
            continue
        parent = classes.get(base)
        if parent is None:
            return True  # imported base: assume conformant
        if _chain_defines(classes, parent, predicate, seen):
            return True
    return False


def _local_ancestry(
    classes: Dict[str, ast.ClassDef], cls: ast.ClassDef
) -> List[ast.ClassDef]:
    """``cls`` plus every module-local ancestor, cycle-safe."""
    out: List[ast.ClassDef] = []
    stack = [cls]
    seen: Set[str] = set()
    while stack:
        node = stack.pop()
        if node.name in seen:
            continue
        seen.add(node.name)
        out.append(node)
        for base in _base_names(node):
            parent = classes.get(base)
            if parent is not None:
                stack.append(parent)
    return out


def _declares_het_aware(cls: ast.ClassDef) -> bool:
    """Does the class body set ``heterogeneity_aware = True``?"""
    for item in cls.body:
        value = None
        if isinstance(item, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == "heterogeneity_aware"
                for t in item.targets
            ):
                value = item.value
        elif isinstance(item, ast.AnnAssign):
            target = item.target
            if (
                isinstance(target, ast.Name)
                and target.id == "heterogeneity_aware"
            ):
                value = item.value
        if isinstance(value, ast.Constant) and value.value is True:
            return True
    return False


def _references_gen_scores(cls: ast.ClassDef) -> bool:
    """Does anything in the class body touch ``gen_scores``?"""
    for node in ast.walk(cls):
        if isinstance(node, ast.Attribute) and node.attr == "gen_scores":
            return True
        if isinstance(node, ast.Name) and node.id == "gen_scores":
            return True
    return False


def _defines_schedule(cls: ast.ClassDef) -> bool:
    """Does the class body define a ``schedule`` method?"""
    return any(
        isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        and item.name == "schedule"
        for item in cls.body
    )


def _defines_name(cls: ast.ClassDef) -> bool:
    """Does the class body assign a ``name`` class attribute?"""
    for item in cls.body:
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name) and target.id == "name":
                    return True
        elif isinstance(item, ast.AnnAssign):
            target = item.target
            if isinstance(target, ast.Name) and target.id == "name":
                return True
    return False
