"""Call-graph-verified event scoping: the wrapper loophole, closed.

``OBS004``/``OBS005`` check where the *emit line* lives: service
lifecycle events must be emitted from ``repro/serve/``, simulator-scoped
events from ``repro/sim/`` (plus the obs modules that implement the
emission API). That check has a one-line loophole: put the emit in a
helper *inside* the allowed scope and call the helper from outside it —
the emit line is clean, but the event still originates from the wrong
subsystem.

``XOBS001`` closes it with the call graph: for every resolved call edge
whose callee *directly* contains a scoped emission (and whose own file
is inside the allowed scope — otherwise OBS004/OBS005 already fired),
the caller's file must also be inside that scope. The check is
deliberately one edge deep: transitively, *everything* reaches the
emission helpers (the serve engine constructs the simulators that emit
provenance — that is the designed architecture, not a violation), so
only the direct wrapper call is evidence of scope laundering.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from repro.lint.callgraph import iter_contexts
from repro.lint.engine import Finding, ProjectIndex, ProjectPass
from repro.lint.passes.obs_schema import ObsSchemaPass, _receiver_is_tracer

#: Borrow the per-file pass's event-type resolution so both agree on
#: what counts as a scoped emission.
_OBS = ObsSchemaPass()


def _service_scope(rel: str) -> bool:
    return "repro/serve/" in rel or rel.endswith("obs/tracer.py")


def _simulator_scope(rel: str) -> bool:
    return (
        "repro/sim/" in rel
        or rel.endswith("obs/tracer.py")
        or rel.endswith("obs/prov.py")
        or rel.endswith("obs/slo.py")
    )


#: scope key -> (allowed-path predicate, human description).
_SCOPES = {
    "service": (_service_scope, "repro/serve/"),
    "simulator": (_simulator_scope, "repro/sim/"),
}


class CrossObsScopePass(ProjectPass):
    """Flag out-of-scope callers of directly-emitting scoped helpers."""

    name = "xobs"
    rules = ("XOBS001",)

    docs = {
        "XOBS001": (
            "A function outside an event scope directly calls a helper\n"
            "that (a) lives inside the scope and (b) directly emits a\n"
            "scope-restricted event — service lifecycle events\n"
            "(OBS004's scope: repro/serve/) or simulator-scoped\n"
            "provenance/SLO events (OBS005's scope: repro/sim/). The\n"
            "per-file rules only see the emit line, which is inside the\n"
            "scope and therefore clean; this rule checks the call edge,\n"
            "so wrapping the emit in a one-line helper no longer\n"
            "launders the scope. Only the direct edge is checked:\n"
            "reaching the emission transitively (the serve engine\n"
            "driving a simulator) is the designed architecture."
        ),
    }

    def run_project(self, index: ProjectIndex) -> List[Finding]:
        from repro.obs import events

        emitters = _direct_emitters(index, events)
        findings: List[Finding] = []
        for edge in index.graph.edges:
            scoped = emitters.get(edge.callee)
            if not scoped:
                continue
            for scope, etype in sorted(scoped):
                allowed, home = _SCOPES[scope]
                if allowed(edge.rel_path):
                    continue
                findings.append(
                    Finding(
                        path=edge.rel_path,
                        line=edge.line,
                        rule="XOBS001",
                        message=(
                            f"call into {edge.callee} emits the "
                            f"{scope}-scoped event {etype!r} on the "
                            f"caller's behalf; that event belongs to "
                            f"{home} and wrapping the emit in a helper "
                            "does not move the scope boundary"
                        ),
                    )
                )
        return findings


def _direct_emitters(
    index: ProjectIndex, events
) -> Dict[str, Set[Tuple[str, str]]]:
    """qname -> {(scope, etype)} for in-scope, directly-emitting functions."""
    scoped_types = {
        "service": frozenset(events.SERVICE_TYPES),
        "simulator": frozenset(events.SIMULATOR_SCOPED_TYPES),
    }
    emitters: Dict[str, Set[Tuple[str, str]]] = {}
    for mod in index.table.modules.values():
        rel = mod.src.rel_path
        scopes_here = [
            scope
            for scope, (allowed, _home) in _SCOPES.items()
            if allowed(rel)
        ]
        if not scopes_here:
            continue  # out-of-scope emits are OBS004/OBS005's findings.
        for qname, _class_qname, node in iter_contexts(mod.name, mod.src):
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                func = call.func
                if not isinstance(func, ast.Attribute):
                    continue
                etype = None
                if func.attr == "emit":
                    etype = _OBS._resolve_etype(call, events)
                elif func.attr in events.EVENT_FIELDS and (
                    _receiver_is_tracer(func)
                ):
                    etype = func.attr
                if etype is None:
                    continue
                for scope in scopes_here:
                    if etype in scoped_types[scope]:
                        emitters.setdefault(qname, set()).add(
                            (scope, etype)
                        )
    return emitters
