"""Obs-schema pass: every emitted event must match ``repro.obs.events``.

The structured event log is a contract (``docs/OBSERVABILITY.md``);
``tools/check_obs_docs.py`` keeps the *docs* in sync with the schema,
and this pass keeps the *emitting code* in sync — the code-side half of
that check, absorbed into the linter so it runs with every other
invariant.

* ``OBS001`` — an ``emit(...)`` call whose event type (string literal
  or ``ev.CONSTANT``) is not declared in
  :data:`repro.obs.events.EVENT_FIELDS`;
* ``OBS002`` — an emit (or typed-helper call on a tracer) whose keyword
  fields do not match the declared field set;
* ``OBS003`` — ``EVENT_TYPES`` and ``EVENT_FIELDS`` disagreeing with
  each other inside ``events.py`` itself;
* ``OBS004`` — a service-lifecycle event
  (:data:`repro.obs.events.SERVICE_TYPES`) emitted outside the
  ``repro/serve/`` package. Those events narrate the *service's* life
  (start/stop, admission rejections, clock changes); a simulator or
  cache system emitting them would let a batch run masquerade as an
  online one and break the serve/batch event-log equivalence contract.
  The typed helpers in ``obs/tracer.py`` are the one exemption — they
  define the emission API the service calls.
* ``OBS005`` — the mirror image: a simulator-scoped event
  (:data:`repro.obs.events.SIMULATOR_SCOPED_TYPES` — decision
  provenance and SLO tracking) emitted outside ``repro/sim/`` and the
  obs modules that implement the emission (``obs/tracer.py``,
  ``obs/prov.py``, ``obs/slo.py``). Provenance must come from the one
  simulator code path both batch and serve share; a serve-side emit
  would fork the streams and break their bit-identity.

Dynamic event types (a variable holding the type) are skipped — the
runtime validator (:func:`repro.obs.events.validate_event`) still
covers those.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.astutil import dotted_name
from repro.lint.engine import LintPass, SourceFile
from repro.lint.findings import Finding

#: Receiver spellings that mark a call as targeting a tracer. Typed
#: helper calls (``tracer.cache_admit(...)``) are only field-checked on
#: these receivers so an unrelated object with a same-named method is
#: not flagged.
_TRACER_RECEIVERS = {"tracer", "tr", "tracing"}


def _schema():
    """The live schema (imported lazily so the pass is cheap to build)."""
    from repro.obs import events

    return events


def _receiver_is_tracer(func: ast.Attribute) -> bool:
    """Heuristic: is the attribute's receiver a tracer object?"""
    name = dotted_name(func.value)
    if name is None:
        return False
    last = name.split(".")[-1]
    return (
        last in _TRACER_RECEIVERS
        or last.endswith("_tracer")
        or last == "self"
    )


class ObsSchemaPass(LintPass):
    """Check emit sites against the declared event schema."""

    name = "obs-schema"
    rules = ("OBS001", "OBS002", "OBS003", "OBS004", "OBS005")

    docs = {
        "OBS001": (
            "An emit(...) whose event type is not declared in\n"
            "repro.obs.events.EVENT_FIELDS. Declare the type (and its\n"
            "fields) in the schema and document it in\n"
            "docs/OBSERVABILITY.md before emitting it."
        ),
        "OBS002": (
            "An emit (or typed tracer helper call) whose keyword\n"
            "fields do not match the declared field set for the event\n"
            "type — missing or extra fields. The schema in\n"
            "repro.obs.events is the contract; change it and the docs\n"
            "together, not the call site alone."
        ),
        "OBS003": (
            "EVENT_TYPES and EVENT_FIELDS inside repro/obs/events.py\n"
            "disagree about which event types exist. The two\n"
            "declarations must list exactly the same types."
        ),
        "OBS004": (
            "A service-lifecycle event (SERVICE_TYPES) emitted outside\n"
            "repro/serve/. Those events narrate the online service's\n"
            "life (start/stop, admission rejections, clock changes); a\n"
            "simulator emitting them would let a batch run masquerade\n"
            "as an online one. See docs/SERVE.md. XOBS001 extends this\n"
            "check across call edges."
        ),
        "OBS005": (
            "A simulator-scoped event (SIMULATOR_SCOPED_TYPES:\n"
            "decision provenance, SLO tracking) emitted outside\n"
            "repro/sim/ and the obs modules that implement the\n"
            "emission. Provenance must come from the one simulator\n"
            "code path batch and serve share, or the two event streams\n"
            "fork. See docs/OBSERVABILITY.md. XOBS001 extends this\n"
            "check across call edges."
        ),
    }

    def run(self, src: SourceFile) -> List[Finding]:
        """Scan emit calls; self-check the schema module itself."""
        events = _schema()
        findings: List[Finding] = []
        if src.path.name == "events.py" and src.path.parent.name == "obs":
            findings.extend(self._check_schema_consistency(src, events))
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr == "emit":
                findings.extend(self._check_emit(src, node, events))
                etype = self._resolve_etype(node, events)
                if etype in events.SERVICE_TYPES:
                    findings.extend(
                        self._check_service_scope(src, node, etype)
                    )
                if etype in events.SIMULATOR_SCOPED_TYPES:
                    findings.extend(
                        self._check_simulator_scope(src, node, etype)
                    )
            elif func.attr in events.EVENT_FIELDS and _receiver_is_tracer(
                func
            ):
                findings.extend(
                    self._check_helper_call(src, node, func.attr, events)
                )
                if func.attr in events.SERVICE_TYPES:
                    findings.extend(
                        self._check_service_scope(src, node, func.attr)
                    )
                if func.attr in events.SIMULATOR_SCOPED_TYPES:
                    findings.extend(
                        self._check_simulator_scope(src, node, func.attr)
                    )
        return findings

    def _check_service_scope(
        self, src: SourceFile, node: ast.Call, etype: str
    ) -> List[Finding]:
        """OBS004: service-lifecycle events belong to ``repro/serve/``."""
        rel = src.rel_path
        if "repro/serve/" in rel or rel.endswith("obs/tracer.py"):
            return []
        return [
            src.finding(
                node,
                "OBS004",
                f"service-lifecycle event {etype!r} emitted outside "
                "repro/serve/; only the online service may narrate "
                "service start/stop, admission rejections, and clock "
                "changes (see docs/SERVE.md)",
            )
        ]

    def _check_simulator_scope(
        self, src: SourceFile, node: ast.Call, etype: str
    ) -> List[Finding]:
        """OBS005: provenance/SLO events belong to the simulators."""
        rel = src.rel_path
        allowed = (
            "repro/sim/" in rel
            or rel.endswith("obs/tracer.py")
            or rel.endswith("obs/prov.py")
            or rel.endswith("obs/slo.py")
        )
        if allowed:
            return []
        return [
            src.finding(
                node,
                "OBS005",
                f"simulator-scoped event {etype!r} emitted outside "
                "repro/sim/; decision provenance and SLO events must "
                "come from the shared simulator code path so batch and "
                "serve event logs stay bit-identical "
                "(see docs/OBSERVABILITY.md)",
            )
        ]

    def _check_schema_consistency(
        self, src: SourceFile, events
    ) -> List[Finding]:
        declared = set(events.EVENT_TYPES)
        fielded = set(events.EVENT_FIELDS)
        drift = sorted(declared.symmetric_difference(fielded))
        if not drift:
            return []
        return [
            Finding(
                path=src.rel_path,
                line=1,
                rule="OBS003",
                message=(
                    "EVENT_TYPES and EVENT_FIELDS disagree on: "
                    f"{', '.join(drift)}"
                ),
            )
        ]

    def _resolve_etype(self, node: ast.Call, events) -> Optional[str]:
        """The event-type argument as a string, or ``None`` if dynamic."""
        etype_arg = None
        if len(node.args) >= 2:
            etype_arg = node.args[1]
        for kw in node.keywords:
            if kw.arg == "etype":
                etype_arg = kw.value
        if etype_arg is None:
            return None
        if isinstance(etype_arg, ast.Constant) and isinstance(
            etype_arg.value, str
        ):
            return etype_arg.value
        if isinstance(etype_arg, (ast.Name, ast.Attribute)):
            name = dotted_name(etype_arg)
            if name is None:
                return None
            const = name.split(".")[-1]
            value = getattr(events, const, None)
            if isinstance(value, str):
                return value
            if const.isupper():
                # Looks like a schema constant but is not one.
                return const.lower()
        return None

    def _check_emit(
        self, src: SourceFile, node: ast.Call, events
    ) -> List[Finding]:
        etype = self._resolve_etype(node, events)
        if etype is None:
            return []
        expected = events.EVENT_FIELDS.get(etype)
        if expected is None:
            return [
                src.finding(
                    node,
                    "OBS001",
                    f"emit of undeclared event type {etype!r}; declare "
                    "it in repro.obs.events.EVENT_FIELDS (and document "
                    "it in docs/OBSERVABILITY.md)",
                )
            ]
        if any(kw.arg is None for kw in node.keywords):
            return []  # **kwargs: field set is dynamic, skip.
        got = {
            kw.arg
            for kw in node.keywords
            if kw.arg not in ("etype", "job_id", "ts_s")
        }
        missing = sorted(set(expected) - got)
        extra = sorted(got - set(expected))
        if not missing and not extra:
            return []
        return [
            src.finding(
                node,
                "OBS002",
                f"emit of {etype!r} does not match the schema: "
                f"missing fields {missing}, extra fields {extra}",
            )
        ]

    def _check_helper_call(
        self, src: SourceFile, node: ast.Call, etype: str, events
    ) -> List[Finding]:
        if any(kw.arg is None for kw in node.keywords):
            return []
        expected = set(events.EVENT_FIELDS[etype])
        got = {
            kw.arg
            for kw in node.keywords
            if kw.arg not in ("job_id", "ts_s")
        }
        # Helpers may compute derived fields (io_throttle's ``capped``)
        # and accept the rest positionally, so only unknown keywords are
        # errors here.
        extra = sorted(got - expected)
        if not extra:
            return []
        return [
            src.finding(
                node,
                "OBS002",
                f"tracer.{etype}(...) passes fields {extra} that are "
                f"not in the {etype!r} schema",
            )
        ]
