"""Units pass: the MB / MB/s / seconds convention is machine-checked.

The whole library speaks one unit language (:mod:`repro.units`): sizes
in MB, bandwidth in MB/s, time in seconds. Conversions live in
``units.py`` and nowhere else, and public numeric parameters advertise
their unit in the name (``_mb`` / ``_mbps`` / ``_s`` / ``_gpus``).

* ``UNI001`` — a multiplication/division by a known conversion constant
  (1024, 1024², 125, 60, 3600, 86400, 604800, 1000, ``/ 8``) outside
  ``units.py``: use the named helper (``units.gb``, ``units.gbps``,
  ``units.hours``, ``units.seconds_to_minutes``, ...) so the conversion
  is greppable and single-sourced.
* ``UNI002`` — a public function parameter annotated ``float`` whose
  name ends in a *non-canonical* unit suffix (``_gb``, ``_gbps``,
  ``_ms``, ``_min``, ``_hours``, ...): convert at the boundary and pass
  canonical units through the API instead.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.astutil import dotted_name, is_constant_number
from repro.lint.engine import LintPass, SourceFile
from repro.lint.findings import Finding

#: Conversion factors that must not appear as bare literals in
#: multiplications/divisions outside ``units.py``. Small round ints
#: (60, 1000) are excluded to avoid flagging counts; their float forms
#: are unambiguous conversions.
_CONVERSION_CONSTANTS = {
    1024,
    1024.0,
    1048576,
    1048576.0,
    125,
    125.0,
    60.0,
    3600.0,
    86400.0,
    604800.0,
    1000.0,
}

#: Literal divisors that read as bits->bytes conversions.
_DIV_ONLY_CONSTANTS = {8, 8.0}

#: Parameter-name suffixes that encode a *non-canonical* unit.
_BAD_SUFFIXES = (
    "_gb",
    "_tb",
    "_kb",
    "_bytes",
    "_gbps",
    "_kbps",
    "_bps",
    "_ms",
    "_us",
    "_ns",
    "_min",
    "_mins",
    "_minutes",
    "_hours",
    "_hrs",
    "_days",
)


def _is_units_module(src: SourceFile) -> bool:
    """``repro/units.py`` itself is the one legal home for conversions."""
    return src.path.name == "units.py" and src.path.parent.name == "repro"


def _constant_value(node: ast.AST):
    """The numeric literal value of a node, unwrapping unary minus."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node = node.operand
    if is_constant_number(node):
        return node.value
    return None


class UnitsPass(LintPass):
    """Flag magic conversion constants and non-canonical unit suffixes."""

    name = "units"
    rules = ("UNI001", "UNI002")

    docs = {
        "UNI001": (
            "A multiplication/division by a known unit-conversion\n"
            "constant (1024, 1024**2, 125, 60.0, 3600.0, 86400.0,\n"
            "604800.0, 1000.0, / 8) outside repro/units.py. Bare\n"
            "conversion factors are ungreppable and drift; use the\n"
            "named helper (units.gb, units.gbps, units.hours,\n"
            "units.seconds_to_minutes, ...) so each conversion has one\n"
            "home."
        ),
        "UNI002": (
            "A public function parameter annotated float whose name\n"
            "ends in a non-canonical unit suffix (_gb, _gbps, _ms,\n"
            "_min, _hours, ...). The internal convention is MB / MB/s\n"
            "/ seconds; convert at the boundary with a repro.units\n"
            "helper and pass canonical units through the API."
        ),
    }

    def run(self, src: SourceFile) -> List[Finding]:
        """Scan binary operations and public function signatures."""
        if _is_units_module(src):
            return []
        findings: List[Finding] = []
        for node in ast.walk(src.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Mult, ast.Div)
            ):
                findings.extend(self._check_binop(src, node))
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                findings.extend(self._check_signature(src, node))
        return findings

    def _check_binop(
        self, src: SourceFile, node: ast.BinOp
    ) -> List[Finding]:
        suspects = []
        for side, operand in (("left", node.left), ("right", node.right)):
            value = _constant_value(operand)
            if value is None:
                continue
            if value in _CONVERSION_CONSTANTS:
                suspects.append(value)
            elif (
                value in _DIV_ONLY_CONSTANTS
                and isinstance(node.op, ast.Div)
                and side == "right"
            ):
                suspects.append(value)
        if not suspects:
            return []
        op = "*" if isinstance(node.op, ast.Mult) else "/"
        rendered = ", ".join(f"{op} {v!r}" for v in suspects)
        return [
            src.finding(
                node,
                "UNI001",
                f"magic unit conversion ({rendered}); use the named "
                "repro.units helper instead",
            )
        ]

    def _check_signature(
        self, src: SourceFile, node
    ) -> List[Finding]:
        if node.name.startswith("_"):
            return []
        findings: List[Finding] = []
        args = list(node.args.posonlyargs) + list(node.args.args) + list(
            node.args.kwonlyargs
        )
        for arg in args:
            if not _is_float_annotation(arg.annotation):
                continue
            suffix = _bad_suffix(arg.arg)
            if suffix is None:
                continue
            findings.append(
                Finding(
                    path=src.rel_path,
                    line=arg.lineno,
                    rule="UNI002",
                    message=(
                        f"parameter {arg.arg!r} of {node.name}() carries "
                        f"the non-canonical unit suffix {suffix!r}; the "
                        "internal convention is MB / MB/s / seconds "
                        "(_mb / _mbps / _s)"
                    ),
                )
            )
        return findings


def _is_float_annotation(annotation) -> bool:
    """True when a parameter annotation names ``float``."""
    if annotation is None:
        return False
    name = dotted_name(annotation)
    if name == "float":
        return True
    if isinstance(annotation, ast.Constant) and annotation.value == "float":
        return True
    return False


def _bad_suffix(param_name: str):
    """The offending suffix of ``param_name``, or ``None`` if clean."""
    for suffix in _BAD_SUFFIXES:
        if param_name.endswith(suffix):
            return suffix
    return None
