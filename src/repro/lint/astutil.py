"""Small AST helpers shared by the lint passes."""

from __future__ import annotations

import ast
from typing import Optional


def dotted_name(node: ast.AST) -> Optional[str]:
    """The dotted source form of a Name/Attribute chain, else ``None``.

    ``np.random.default_rng`` -> ``"np.random.default_rng"``;
    anything with a non-name link (calls, subscripts) returns ``None``.
    """
    parts = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call's callee (``None`` for dynamic callees)."""
    return dotted_name(node.func)


def is_constant_number(node: ast.AST) -> bool:
    """True for int/float literals (bools excluded)."""
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    )
