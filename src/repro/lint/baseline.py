"""The checked-in lint baseline: known findings tolerated for now.

A baseline lets the linter land with teeth while a violation backlog is
burned down: recorded findings are filtered out of the report, *new*
findings still fail the build, and ``--strict`` additionally fails when
the baseline contains entries that no longer fire (so it can only
shrink). The repo's baseline (``tools/lint_baseline.json``) is empty —
the acceptance bar for this reproduction — but the mechanism is kept
for downstream forks.

Matching is line-insensitive (see :meth:`Finding.key`): moving code
around a recorded violation does not invalidate the baseline, changing
the violation's file, rule, or message does.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import List, Sequence, Tuple

from repro.lint.findings import Finding

#: Schema version written into baseline files.
_VERSION = 1


class Baseline:
    """A multiset of tolerated findings, loadable from/savable to JSON."""

    def __init__(self, findings: Sequence[Finding] = ()) -> None:
        self._counts: Counter = Counter(f.key() for f in findings)

    def __len__(self) -> int:
        return sum(self._counts.values())

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        findings = [
            Finding(
                path=entry["path"],
                line=int(entry.get("line", 0)),
                rule=entry["rule"],
                message=entry["message"],
            )
            for entry in data.get("findings", [])
        ]
        return cls(findings)

    @staticmethod
    def save(path: Path, findings: Sequence[Finding]) -> None:
        """Write ``findings`` as a baseline file (sorted, stable JSON)."""
        payload = {
            "version": _VERSION,
            "findings": [f.to_dict() for f in sorted(findings)],
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def apply(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Tuple[str, str, str]]]:
        """Split findings into (new, stale-baseline-keys).

        Each baseline entry absorbs at most as many findings as were
        recorded for its key; the remainder is returned as *new*.
        Baseline keys that absorbed nothing come back as *stale* so
        ``--strict`` can force their removal.
        """
        remaining = Counter(self._counts)
        new: List[Finding] = []
        for finding in findings:
            key = finding.key()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
            else:
                new.append(finding)
        stale = sorted(
            key for key, count in remaining.items() if count > 0
        )
        return new, stale
