"""Project call graph: who calls whom, and what we cannot prove.

Built over the :class:`~repro.lint.symbols.SymbolTable`, the graph has
one node per indexed function/method plus a ``<module>`` pseudo-node
per module for top-level statements. Edges are recorded for the call
shapes the table can actually resolve:

* **direct calls** — ``helper()``, ``pkg.mod.func()``, aliased imports;
* **constructor calls** — ``MyClass()`` edges to ``MyClass.__init__``
  when the class (or a local ancestor) defines one;
* **method dispatch** — ``self.m()`` / ``cls.m()`` / ``super().m()``
  resolved through the class's local base chain;
* **registry dispatch** — ``REGISTRY[key](...)`` where ``REGISTRY`` is
  a module-level dict literal of name/attribute values: one edge per
  resolvable value (the dispatch could pick any of them).

Everything else — a call on an arbitrary object, a name the table does
not know, a callable stored in a local — lands in the explicit
**unresolved-call** category (:class:`UnresolvedCall`). The cross-module
passes and the CLI surface that count rather than silently treating
unresolved calls as safe: the soundness gap is part of the report.
Builtin calls (``len``, ``print``) and calls into modules outside the
indexed project (``time.time``) are *external*, not unresolved — the
table proved what they are; they are simply not project code.
"""

from __future__ import annotations

import ast
import builtins
import dataclasses
from typing import Dict, List, Optional

from repro.lint.astutil import dotted_name
from repro.lint.engine import SourceFile
from repro.lint.symbols import SymbolTable

#: Names resolvable to the interpreter builtins: calling them is
#: external, never "unresolved".
_BUILTIN_NAMES = frozenset(dir(builtins))

#: Pseudo-function name for a module's top-level statements.
MODULE_BODY = "<module>"


def iter_contexts(module: str, src: SourceFile):
    """Yield ``(qname, class_qname, node)`` per analysis context.

    One context per top-level function, per method, and one
    ``<module>`` pseudo-context for everything else (module-level and
    class-level statements). Nested ``def``s stay inside their
    enclosing context: their behaviour is attributed to the function
    that defines them. Shared by the call-graph builder and the
    whole-program passes so call edges and source/sink sites agree on
    context identity.
    """
    module_body: List[ast.stmt] = []
    for stmt in src.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield (f"{module}.{stmt.name}", None, stmt)
        elif isinstance(stmt, ast.ClassDef):
            class_qname = f"{module}.{stmt.name}"
            class_body: List[ast.stmt] = []
            for item in stmt.body:
                if isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    yield (
                        f"{class_qname}.{item.name}",
                        class_qname,
                        item,
                    )
                else:
                    class_body.append(item)
            if class_body:
                holder = ast.Module(body=class_body, type_ignores=[])
                yield (f"{module}.{MODULE_BODY}", class_qname, holder)
        else:
            module_body.append(stmt)
    yield (
        f"{module}.{MODULE_BODY}",
        None,
        ast.Module(body=module_body, type_ignores=[]),
    )


@dataclasses.dataclass(frozen=True)
class CallEdge:
    """One resolved call: ``caller`` invokes ``callee`` at ``line``."""

    caller: str
    callee: str
    rel_path: str
    line: int


@dataclasses.dataclass(frozen=True)
class UnresolvedCall:
    """A call site the graph could not resolve (soundness gap)."""

    caller: str
    callee_text: str
    rel_path: str
    line: int


class CallGraph:
    """Resolved call edges plus the explicit unresolved-call category."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self.edges: List[CallEdge] = []
        self.unresolved: List[UnresolvedCall] = []
        self.out: Dict[str, List[CallEdge]] = {}
        self.into: Dict[str, List[CallEdge]] = {}

    @classmethod
    def build(cls, table: SymbolTable) -> "CallGraph":
        """Walk every indexed function body and resolve its calls."""
        graph = cls(table)
        for mod in table.modules.values():
            graph._walk_module(mod.name, mod.src)
        return graph

    # -- construction --------------------------------------------------

    def _walk_module(self, module: str, src: SourceFile) -> None:
        """Attribute each call site to its enclosing function node."""
        for caller, class_qname, node in iter_contexts(module, src):
            for call in self._calls_under(node):
                self._resolve_call(
                    caller, class_qname, module, src, call
                )

    @staticmethod
    def _calls_under(node: ast.AST) -> List[ast.Call]:
        return [n for n in ast.walk(node) if isinstance(n, ast.Call)]

    def _resolve_call(
        self,
        caller: str,
        class_qname: Optional[str],
        module: str,
        src: SourceFile,
        call: ast.Call,
    ) -> None:
        func = call.func
        line = getattr(call, "lineno", 1)
        # Registry dispatch: REGISTRY[key](...)
        if isinstance(func, ast.Subscript):
            if self._resolve_registry(caller, module, src, func, line):
                return
            self._record_unresolved(caller, src, func, line)
            return
        # super().m() has a Call in its chain, so test it before the
        # dotted-name fast path returns None for it.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
            and class_qname is not None
        ):
            self._resolve_super_dispatch(
                caller, class_qname, src, func.attr, line
            )
            return
        name = dotted_name(func)
        if name is None:
            # Call on a computed expression (chained calls, lambdas).
            self._record_unresolved(caller, src, func, line)
            return
        head = name.split(".")[0]
        # self./cls. method dispatch through the local base chain.
        if class_qname is not None and head in ("self", "cls"):
            self._resolve_self_dispatch(
                caller, class_qname, src, name, line
            )
            return
        resolved = self.table.resolve(module, name)
        if resolved is None:
            if "." not in name and head in _BUILTIN_NAMES:
                return  # builtin: external, proven.
            self._record_unresolved(caller, src, func, line)
            return
        self._record_resolved(caller, src, resolved, line)

    def _resolve_registry(
        self,
        caller: str,
        module: str,
        src: SourceFile,
        func: ast.Subscript,
        line: int,
    ) -> bool:
        base = dotted_name(func.value)
        if base is None:
            return False
        resolved = self.table.resolve(module, base)
        if resolved is None:
            return False
        reg_module, _, reg_name = resolved.rpartition(".")
        mod = self.table.modules.get(reg_module)
        if mod is None or reg_name not in mod.registries:
            return False
        registry = mod.registries[reg_name]
        hit = False
        for value in registry.values:
            value_name = dotted_name(value)
            if value_name is None:
                continue
            target = self.table.resolve(reg_module, value_name)
            if target is not None and self._record_resolved(
                caller, src, target, line
            ):
                hit = True
        return hit

    def _resolve_self_dispatch(
        self,
        caller: str,
        class_qname: str,
        src: SourceFile,
        name: str,
        line: int,
    ) -> None:
        parts = name.split(".")
        if len(parts) != 2:
            # ``self.attr.method()``: the attribute's type is unknown.
            self._record_unresolved_text(caller, src, name, line)
            return
        method = self.table.resolve_method(class_qname, parts[1])
        if method is None:
            # Method (or attribute-held callable) from outside the
            # indexed project.
            self._record_unresolved_text(caller, src, name, line)
            return
        self._add_edge(caller, method.qname, src, line)

    def _resolve_super_dispatch(
        self,
        caller: str,
        class_qname: str,
        src: SourceFile,
        method_name: str,
        line: int,
    ) -> None:
        symbol = self.table.cls(class_qname)
        if symbol is None:
            self._record_unresolved_text(
                caller, src, f"super().{method_name}", line
            )
            return
        for base in self.table.base_classes(symbol):
            method = self.table.resolve_method(base.qname, method_name)
            if method is not None:
                self._add_edge(caller, method.qname, src, line)
                return
        self._record_unresolved_text(
            caller, src, f"super().{method_name}", line
        )

    def _record_resolved(
        self, caller: str, src: SourceFile, qname: str, line: int
    ) -> bool:
        """Edge to a function, constructor, or method — if indexed."""
        fn = self.table.function(qname)
        if fn is not None:
            self._add_edge(caller, fn.qname, src, line)
            return True
        klass = self.table.cls(qname)
        if klass is not None:
            ctor = self.table.resolve_method(klass.qname, "__init__")
            self._add_edge(
                caller,
                ctor.qname if ctor is not None else klass.qname,
                src,
                line,
            )
            return True
        root = qname.split(".")[0]
        if root in self.table.modules:
            # Names the project module but not an indexed symbol
            # (e.g. a module-level constant used as a callable).
            self._record_unresolved_text(caller, src, qname, line)
            return False
        return False  # external module: proven, not unresolved.

    def _record_unresolved(
        self, caller: str, src: SourceFile, func: ast.AST, line: int
    ) -> None:
        text = dotted_name(func)
        if text is None:
            try:
                text = ast.unparse(func)
            except Exception:  # pragma: no cover - very old ASTs
                text = "<expression>"
        self._record_unresolved_text(caller, src, text, line)

    def _record_unresolved_text(
        self, caller: str, src: SourceFile, text: str, line: int
    ) -> None:
        self.unresolved.append(
            UnresolvedCall(
                caller=caller,
                callee_text=text,
                rel_path=src.rel_path,
                line=line,
            )
        )

    def _add_edge(
        self, caller: str, callee: str, src: SourceFile, line: int
    ) -> None:
        edge = CallEdge(
            caller=caller,
            callee=callee,
            rel_path=src.rel_path,
            line=line,
        )
        self.edges.append(edge)
        self.out.setdefault(caller, []).append(edge)
        self.into.setdefault(callee, []).append(edge)

    # -- queries -------------------------------------------------------

    def callees(self, caller: str) -> List[CallEdge]:
        """Outgoing resolved edges of ``caller``."""
        return self.out.get(caller, [])

    def callers(self, callee: str) -> List[CallEdge]:
        """Incoming resolved edges of ``callee``."""
        return self.into.get(callee, [])

    def unresolved_in(self, caller: str) -> List[UnresolvedCall]:
        """Unresolved call sites attributed to ``caller``."""
        return [u for u in self.unresolved if u.caller == caller]
