"""Unit helpers used throughout the library.

Internal conventions
--------------------
* **Size** is measured in megabytes (MB, 1e6 bytes would be ambiguous; we
  follow the paper and treat 1 GB = 1024 MB, 1 TB = 1024 GB).
* **Throughput / bandwidth** is measured in MB/s.
* **Time** is measured in seconds.

The helpers below convert the units the paper quotes (GB, TB, Gbps,
minutes) into the internal convention and back, so that experiment code can
read like the paper ("1.6 Gbps remote IO", "1.3 TB dataset", "3,500
minutes").
"""

from __future__ import annotations

#: Megabytes per gigabyte / terabyte (binary convention, as in the paper's
#: "143 GB ImageNet-1k" style figures).
MB_PER_GB = 1024.0
MB_PER_TB = 1024.0 * 1024.0

#: The paper converts 1.6 Gbps to 200 MB/s, i.e. 1 Gbps = 125 MB/s
#: (decimal gigabit over binary megabyte is close enough at the paper's
#: precision; we follow their 8 bits/byte convention exactly).
MB_PER_SECOND_PER_GBPS = 125.0

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY

#: Milliseconds per second — observability surfaces (e.g. the
#: ``sched_decision`` event's ``latency_ms``) report wall-clock
#: latencies in ms while simulation time stays in seconds.
MS_PER_SECOND = 1000.0


def gb(value: float) -> float:
    """Convert gigabytes to MB."""
    return value * MB_PER_GB


def tb(value: float) -> float:
    """Convert terabytes to MB."""
    return value * MB_PER_TB


def mb_to_gb(value_mb: float) -> float:
    """Convert MB to gigabytes."""
    return value_mb / MB_PER_GB


def mb_to_tb(value_mb: float) -> float:
    """Convert MB to terabytes."""
    return value_mb / MB_PER_TB


def gbps(value: float) -> float:
    """Convert gigabits/second to MB/s (1.6 Gbps -> 200 MB/s)."""
    return value * MB_PER_SECOND_PER_GBPS


def mbps_to_gbps(value_mbps: float) -> float:
    """Convert MB/s back to gigabits/second."""
    return value_mbps / MB_PER_SECOND_PER_GBPS


def minutes(value: float) -> float:
    """Convert minutes to seconds."""
    return value * SECONDS_PER_MINUTE


def hours(value: float) -> float:
    """Convert hours to seconds."""
    return value * SECONDS_PER_HOUR


def days(value: float) -> float:
    """Convert days to seconds."""
    return value * SECONDS_PER_DAY


def weeks(value: float) -> float:
    """Convert weeks to seconds."""
    return value * SECONDS_PER_WEEK


def seconds_to_minutes(value_s: float) -> float:
    """Convert seconds to minutes (the unit the paper reports JCT in)."""
    return value_s / SECONDS_PER_MINUTE


def seconds_to_ms(value_s: float) -> float:
    """Convert seconds to milliseconds (observability latencies)."""
    return value_s * MS_PER_SECOND


def ms_to_seconds(value_ms: float) -> float:
    """Convert milliseconds back to seconds."""
    return value_ms / MS_PER_SECOND
