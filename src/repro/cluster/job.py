"""Training jobs: specification and runtime progress.

A job is specified the way the paper's schedulers see it: a model trained on
a dataset with a fixed GPU count, an ideal (compute-bound) data-consumption
throughput ``f*`` in MB/s (the original scheduler's ``perf``), and a total
amount of training work expressed as ``numSteps * stepDataSize`` (Eq 6).

Runtime progress (:class:`JobProgress`) is tracked in *bytes of training
data consumed*, because with the pipelined-execution model of §4 every
performance quantity is a data rate. Epoch boundaries — where newly cached
items become effective (§6, "delayed effectiveness") — fall every
``dataset.size_mb`` bytes of progress.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

from repro.cluster.dataset import Dataset


class JobPhase(enum.Enum):
    """Lifecycle of a job inside a simulation."""

    PENDING = "pending"
    RUNNING = "running"
    FINISHED = "finished"
    #: Withdrawn by an online cancellation (``repro.serve``); the job
    #: retires immediately with no finish time.
    CANCELLED = "cancelled"


@dataclasses.dataclass
class Job:
    """A deep-learning training job.

    Attributes
    ----------
    job_id:
        Unique identifier.
    model:
        Model name (informational; used to look profiles up in the zoo).
    dataset:
        The training dataset. Jobs sharing a dataset share its cache (§6).
    num_gpus:
        GPUs the job requests; allocation is all-or-nothing per job except
        under Gavel, which may time-share (fractional rates in the fluid
        simulator).
    ideal_throughput_mbps:
        ``f*``: data consumption rate in MB/s when IO is not the bottleneck,
        at the full requested GPU count.
    total_work_mb:
        ``numSteps * stepDataSize``: total bytes of training data the job
        must consume before completing. Need not be an integer number of
        epochs (the BERT job in §7.1.1 runs 0.07 epochs).
    submit_time_s:
        Arrival time in the trace.
    regular:
        Whether the job satisfies SiloDPerf's assumptions (uniform
        once-per-epoch access, pipelined execution). Irregular jobs fall
        back to the original estimator in a partitioned pool (§6).
    weight:
        Fair-share weight (Gavel supports weighted objectives): a job of
        weight 2 is entitled to twice the equal share. Default 1.
    deadline_s:
        Optional JCT budget relative to submission (an SLO). Jobs with a
        deadline are watched by the :class:`repro.obs.slo.SLOTracker`,
        which emits ``slo_warn``/``slo_violation`` events; ``None``
        (the default) means no SLO.
    """

    job_id: str
    model: str
    dataset: Dataset
    num_gpus: int
    ideal_throughput_mbps: float
    total_work_mb: float
    submit_time_s: float = 0.0
    regular: bool = True
    weight: float = 1.0
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ValueError(f"job {self.job_id}: num_gpus must be >= 1")
        if self.ideal_throughput_mbps <= 0:
            raise ValueError(f"job {self.job_id}: f* must be positive")
        if self.total_work_mb <= 0:
            raise ValueError(f"job {self.job_id}: total work must be positive")
        if self.weight <= 0:
            raise ValueError(f"job {self.job_id}: weight must be positive")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"job {self.job_id}: deadline_s must be positive when set"
            )

    @property
    def num_epochs(self) -> float:
        """Total epochs of the dataset this job will perform (may be < 1)."""
        return self.total_work_mb / self.dataset.size_mb

    @property
    def ideal_duration_s(self) -> float:
        """Duration if never IO-bound: total work at ``f*``."""
        return self.total_work_mb / self.ideal_throughput_mbps

    def cache_efficiency(self) -> float:
        """Eq 5: remote IO (MB/s) saved per MB of cache, ``f* / d``."""
        return self.ideal_throughput_mbps / self.dataset.size_mb


#: Positions within this many MB of an epoch boundary snap across it: a
#: fluid simulation accumulates float error well below this, and an event
#: this close to "now" can be unrepresentable in absolute simulation time.
_EPOCH_SNAP_MB = 1e-3


@dataclasses.dataclass
class JobProgress:
    """Mutable runtime state of a job inside a simulator."""

    job: Job
    phase: JobPhase = JobPhase.PENDING
    work_done_mb: float = 0.0
    start_time_s: Optional[float] = None
    finish_time_s: Optional[float] = None

    @property
    def remaining_work_mb(self) -> float:
        """Bytes of training data still to consume."""
        return max(0.0, self.job.total_work_mb - self.work_done_mb)

    @property
    def epoch_index(self) -> int:
        """Zero-based index of the epoch currently in progress."""
        return int(
            (self.work_done_mb + _EPOCH_SNAP_MB) // self.job.dataset.size_mb
        )

    @property
    def epoch_position_mb(self) -> float:
        """Bytes consumed within the current epoch."""
        return max(
            0.0,
            self.work_done_mb - self.epoch_index * self.job.dataset.size_mb,
        )

    @property
    def work_to_epoch_boundary_mb(self) -> float:
        """Bytes until the next epoch boundary (capped at remaining work)."""
        to_boundary = self.job.dataset.size_mb - self.epoch_position_mb
        return min(to_boundary, self.remaining_work_mb)

    @property
    def done(self) -> bool:
        """Whether the job has consumed all its work."""
        return self.remaining_work_mb <= 1e-9

    def advance(self, data_mb: float) -> None:
        """Consume ``data_mb`` bytes of training data."""
        if data_mb < 0:
            raise ValueError("cannot advance by a negative amount")
        self.work_done_mb = min(
            self.job.total_work_mb, self.work_done_mb + data_mb
        )

    def jct_s(self) -> float:
        """Job completion time (finish − submit), in seconds."""
        if self.finish_time_s is None:
            raise RuntimeError(f"job {self.job.job_id} has not finished")
        return self.finish_time_s - self.job.submit_time_s
