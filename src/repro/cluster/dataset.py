"""Datasets and the dataset registry.

SiloD differs from file/block-oriented caches by being aware of the
*dataset* and *job* abstractions (§6): cache is allocated to datasets (and
shared transparently by every job training on the same dataset), while
remote IO bandwidth is allocated to jobs.

A :class:`Dataset` here carries the only attributes that matter to caching
behaviour: total size, item count (so item-level simulations can draw access
sequences), and an identity used for sharing.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, Optional


@dataclasses.dataclass(frozen=True)
class Dataset:
    """An immutable description of a training dataset.

    Attributes
    ----------
    name:
        Unique identifier. Jobs referring to the same name share cache.
    size_mb:
        Total size in MB.
    num_items:
        Number of data items (images, sequences, ...). Item-level cache
        simulations use this; the fluid model only needs ``size_mb``.
    """

    name: str
    size_mb: float
    num_items: int = 1_000_000

    def __post_init__(self) -> None:
        if self.size_mb <= 0:
            raise ValueError(f"dataset {self.name!r} must have positive size")
        if self.num_items <= 0:
            raise ValueError(f"dataset {self.name!r} must have positive item count")

    @property
    def item_size_mb(self) -> float:
        """Average size of one data item in MB."""
        return self.size_mb / self.num_items


class DatasetRegistry:
    """A collection of datasets keyed by name.

    The registry guarantees one :class:`Dataset` object per name so that
    dataset-level cache accounting (charge once per dataset, §6) can key on
    the object identity or name interchangeably.
    """

    def __init__(self) -> None:
        self._datasets: Dict[str, Dataset] = {}

    def add(self, dataset: Dataset) -> Dataset:
        """Register ``dataset``; re-registering an identical one is a no-op."""
        existing = self._datasets.get(dataset.name)
        if existing is not None:
            if existing != dataset:
                raise ValueError(
                    f"dataset {dataset.name!r} already registered with "
                    f"different attributes"
                )
            return existing
        self._datasets[dataset.name] = dataset
        return dataset

    def get(self, name: str) -> Dataset:
        """Look up a dataset by name, raising ``KeyError`` if unknown."""
        return self._datasets[name]

    def find(self, name: str) -> Optional[Dataset]:
        """Look up a dataset by name, returning ``None`` if unknown."""
        return self._datasets.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._datasets

    def __iter__(self) -> Iterator[Dataset]:
        return iter(self._datasets.values())

    def __len__(self) -> int:
        return len(self._datasets)

    def total_size_mb(self) -> float:
        """Sum of all registered dataset sizes."""
        return sum(d.size_mb for d in self._datasets.values())
