"""Server-level placement: GPUs for jobs, cache shards for datasets.

The fluid simulator treats the cluster's cache as one pool, justified by
Figure 3: the storage fabric serves peer reads at local-disk speed. This
module makes that assumption explicit and checkable:

* :class:`GpuPlacer` bin-packs jobs onto servers (distributed jobs may
  span servers, mirroring data-parallel training);
* :class:`CacheShardPlacer` spreads each dataset's cached bytes over the
  servers' local disks (the even striping Figure 3 measures);
* :func:`validate_placement` verifies that, under a given set of running
  jobs and cache shards, no server's disk or fabric NIC is oversubscribed
  — i.e. the "one pool" abstraction holds for this workload.

The placement layer is exercised by `tests/cluster/test_placement.py` and
the Figure 3 benchmark's dynamic variant; the simulators stay pool-based
(the validator shows when that is safe).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.cluster.hardware import Cluster, Server
from repro.cluster.job import Job


@dataclasses.dataclass
class JobPlacement:
    """GPUs assigned to one job, per server id."""

    job_id: str
    gpus_by_server: Dict[int, int]

    @property
    def total_gpus(self) -> int:
        """GPUs assigned across all servers."""
        return sum(self.gpus_by_server.values())

    @property
    def num_servers(self) -> int:
        """Servers the job spans."""
        return len(self.gpus_by_server)


class PlacementError(RuntimeError):
    """Raised when a job or shard set cannot be placed."""


class GpuPlacer:
    """Bin-packs jobs onto servers, preferring dense packings.

    Jobs are placed best-fit-decreasing: a job first tries to fit wholly
    on the emptiest server that can hold it (minimising fragmentation and
    cross-server traffic), then spills over server boundaries like
    data-parallel workers do.
    """

    def __init__(self, cluster: Cluster) -> None:
        self._cluster = cluster
        self._free: Dict[int, int] = {
            server.server_id: server.num_gpus for server in cluster.servers
        }
        #: server id -> GPU generation name, for generation-pinned
        #: placement on mixed fleets.
        self._generation: Dict[int, str] = {
            server.server_id: server.gpu.name for server in cluster.servers
        }
        self._placements: Dict[str, JobPlacement] = {}

    @property
    def free_gpus(self) -> int:
        """GPUs not assigned to any job."""
        return sum(self._free.values())

    def free_gpus_of(self, generation: str) -> int:
        """Unassigned GPUs on servers of one generation."""
        return sum(
            free
            for server_id, free in self._free.items()
            if self._generation[server_id] == generation
        )

    def placement_of(self, job_id: str) -> Optional[JobPlacement]:
        """The placement of a job, if placed."""
        return self._placements.get(job_id)

    def place(
        self, job: Job, generation: Optional[str] = None
    ) -> JobPlacement:
        """Place a job; raises :class:`PlacementError` if it cannot fit.

        With ``generation`` set, only servers of that GPU generation are
        considered — the placement-level counterpart of the scheduler's
        per-pool allocation, so a job assigned to (say) the A100 pool
        never lands on V100 hardware.
        """
        if job.job_id in self._placements:
            raise PlacementError(f"job {job.job_id} is already placed")
        eligible = {
            server_id: free
            for server_id, free in self._free.items()
            if generation is None
            or self._generation[server_id] == generation
        }
        if job.num_gpus > sum(eligible.values()):
            pool = f" on {generation}" if generation is not None else ""
            raise PlacementError(
                f"job {job.job_id} needs {job.num_gpus} GPUs{pool}; "
                f"{sum(eligible.values())} free"
            )
        # Best fit: the server with the least free GPUs that still holds
        # the whole job.
        whole = [
            (free, server_id)
            for server_id, free in eligible.items()
            if free >= job.num_gpus
        ]
        assignment: Dict[int, int] = {}
        if whole:
            _free, server_id = min(whole)
            assignment[server_id] = job.num_gpus
        else:
            # Spill across servers, fullest-first to keep spans short.
            needed = job.num_gpus
            for server_id, free in sorted(
                eligible.items(), key=lambda kv: -kv[1]
            ):
                if needed <= 0:
                    break
                take = min(free, needed)
                if take > 0:
                    assignment[server_id] = take
                    needed -= take
        for server_id, taken in assignment.items():
            self._free[server_id] -= taken
        placement = JobPlacement(job_id=job.job_id, gpus_by_server=assignment)
        self._placements[job.job_id] = placement
        return placement

    def release(self, job_id: str) -> None:
        """Return a job's GPUs to the free pool (idempotent)."""
        placement = self._placements.pop(job_id, None)
        if placement is None:
            return
        for server_id, taken in placement.gpus_by_server.items():
            self._free[server_id] += taken


@dataclasses.dataclass
class CacheShard:
    """Bytes of one dataset resident on one server."""

    dataset: str
    server_id: int
    size_mb: float


class CacheShardPlacer:
    """Stripes cached datasets evenly across servers' local disks.

    Even striping is what Figure 3 evaluates: every server holds ``1/n``
    of each dataset, so every job reads ``1/n`` locally and the rest from
    peers, and the load on every disk is uniform.
    """

    def __init__(self, cluster: Cluster) -> None:
        self._cluster = cluster
        self._free: Dict[int, float] = {
            server.server_id: server.local_cache_mb
            for server in cluster.servers
        }
        self._shards: Dict[str, List[CacheShard]] = {}

    @property
    def free_cache_mb(self) -> float:
        """Unassigned cache capacity across all servers."""
        return sum(self._free.values())

    def shards_of(self, dataset: str) -> List[CacheShard]:
        """The shards of a dataset (empty if not placed)."""
        return list(self._shards.get(dataset, []))

    def place(self, dataset: str, size_mb: float) -> List[CacheShard]:
        """Stripe ``size_mb`` of a dataset across servers.

        Striping is proportional to each server's free capacity (even for
        a balanced cluster) and raises :class:`PlacementError` when the
        pool cannot hold it — the same condition under which the fluid
        simulator's pool would refuse.
        """
        if size_mb < 0:
            raise ValueError("shard size must be non-negative")
        if dataset in self._shards:
            raise PlacementError(f"dataset {dataset!r} is already placed")
        total_free = self.free_cache_mb
        if size_mb > total_free + 1e-6:
            raise PlacementError(
                f"dataset {dataset!r} needs {size_mb:.0f} MB; "
                f"{total_free:.0f} free"
            )
        shards = []
        if total_free > 0:
            for server_id, free in self._free.items():
                share = size_mb * free / total_free
                if share <= 0:
                    continue
                shards.append(
                    CacheShard(
                        dataset=dataset, server_id=server_id, size_mb=share
                    )
                )
                self._free[server_id] -= share
        self._shards[dataset] = shards
        return list(shards)

    def evict(self, dataset: str) -> None:
        """Drop a dataset's shards (idempotent)."""
        for shard in self._shards.pop(dataset, []):
            self._free[shard.server_id] += shard.size_mb


@dataclasses.dataclass
class PlacementReport:
    """Per-server load under a placement, and whether it is feasible."""

    disk_load_mbps: Dict[int, float]
    nic_load_mbps: Dict[int, float]
    feasible: bool
    bottleneck: Optional[str] = None


def validate_placement(
    cluster: Cluster,
    jobs: Sequence[Job],
    gpu_placer: GpuPlacer,
    shard_placer: CacheShardPlacer,
    loading_rate_mbps: Dict[str, float],
) -> PlacementReport:
    """Check disk and NIC budgets under cache-served loading rates.

    ``loading_rate_mbps`` gives each job's cache-served throughput (hits;
    remote fetches use the egress path, not the storage fabric). With
    even striping, a job's reads hit every server's disk in proportion to
    its shard share; bytes from non-local servers also cross both NICs.
    """
    servers: Dict[int, Server] = {
        server.server_id: server for server in cluster.servers
    }
    disk = {server_id: 0.0 for server_id in servers}
    nic = {server_id: 0.0 for server_id in servers}
    for job in jobs:
        rate = loading_rate_mbps.get(job.job_id, 0.0)
        if rate <= 0:
            continue
        placement = gpu_placer.placement_of(job.job_id)
        if placement is None:
            continue
        shards = shard_placer.shards_of(job.dataset.name)
        total_sharded = sum(s.size_mb for s in shards)
        if total_sharded <= 0:
            continue
        local_servers = set(placement.gpus_by_server)
        for shard in shards:
            fraction = shard.size_mb / total_sharded
            served = rate * fraction
            disk[shard.server_id] += served
            if shard.server_id not in local_servers:
                # Peer read: the serving NIC sends, a job NIC receives
                # (spread over the job's servers).
                nic[shard.server_id] += served
                for server_id in local_servers:
                    nic[server_id] += served / len(local_servers)
    feasible = True
    bottleneck = None
    for server_id, server in servers.items():
        if disk[server_id] > server.local_disk_bandwidth_mbps * (1 + 1e-9):
            feasible = False
            bottleneck = f"disk on server {server_id}"
            break
        if nic[server_id] > server.fabric_bandwidth_mbps * (1 + 1e-9):
            feasible = False
            bottleneck = f"fabric NIC on server {server_id}"
            break
    return PlacementReport(
        disk_load_mbps=disk,
        nic_load_mbps=nic,
        feasible=feasible,
        bottleneck=bottleneck,
    )
