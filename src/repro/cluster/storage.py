"""Remote storage service and the intra-cluster storage fabric.

Two pieces of the paper's substrate live here:

* :class:`RemoteStorage` — the cloud blob store with an egress bandwidth
  limit (Figure 1 / Table 5). The data manager throttles each job's remote
  fetches so the sum stays within this limit.
* :func:`peer_read_throughput` — the Figure 3 experiment's model: when a
  dataset is spread evenly over ``n`` servers' local caches, a job on one
  server reads ``1/n`` of its data locally and ``(n-1)/n`` from peers over
  the storage fabric. With a datacenter-grade fabric this scales almost
  linearly, which justifies treating the distributed cache as one pool.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro import units


@dataclasses.dataclass
class RemoteStorage:
    """A cloud storage account with a hard egress bandwidth limit.

    The class tracks per-job grants so the enforcement layer (the SiloD data
    manager, or the fair-share fallback used by the baselines) can never
    oversubscribe the egress limit.
    """

    egress_limit_mbps: float

    def __post_init__(self) -> None:
        if self.egress_limit_mbps <= 0:
            raise ValueError("egress limit must be positive")
        self._grants: Dict[str, float] = {}

    @property
    def granted_mbps(self) -> float:
        """Total bandwidth currently granted to jobs."""
        return sum(self._grants.values())

    @property
    def available_mbps(self) -> float:
        """Remaining ungranted egress bandwidth."""
        return max(0.0, self.egress_limit_mbps - self.granted_mbps)

    def grant(self, job_id: str, mbps: float) -> None:
        """Grant (or replace) a job's remote-IO bandwidth share.

        Raises ``ValueError`` if the grant would oversubscribe the limit.
        """
        if mbps < 0:
            raise ValueError("bandwidth grant must be non-negative")
        other = self.granted_mbps - self._grants.get(job_id, 0.0)
        if other + mbps > self.egress_limit_mbps * (1 + 1e-9):
            raise ValueError(
                f"grant of {mbps:.1f} MB/s to {job_id} exceeds egress limit "
                f"({other:.1f} already granted of {self.egress_limit_mbps:.1f})"
            )
        self._grants[job_id] = mbps

    def revoke(self, job_id: str) -> None:
        """Drop a job's grant (idempotent)."""
        self._grants.pop(job_id, None)

    def grant_of(self, job_id: str) -> float:
        """The job's current grant in MB/s (0 if none)."""
        return self._grants.get(job_id, 0.0)

    def clear(self) -> None:
        """Revoke every grant."""
        self._grants.clear()


def peer_read_throughput(
    num_servers: int,
    io_demand_per_server_mbps: float,
    local_disk_mbps: float = 2000.0,
    fabric_mbps: float = 12500.0,
) -> float:
    """Aggregate data-loading throughput of ``num_servers`` servers (Fig 3).

    Every server runs a job demanding ``io_demand_per_server_mbps`` (the
    paper uses 1923 MB/s: ResNet-50 on 8 A100s). Datasets are spread evenly
    over all servers' caches, so each job reads a ``1/n`` fraction from the
    local disk and ``(n-1)/n`` from peers.

    Per server, three resources can bottleneck:

    * its own disk serving local reads *and* peer requests from the other
      ``n-1`` servers (each server's disk serves ``1/n`` of every job's
      demand, i.e. the full per-server demand in aggregate);
    * its NIC, carrying ``(n-1)/n`` of its own demand in and the same out;
    * the demand itself (no point loading faster than the job consumes).

    Returns the aggregate achieved throughput in MB/s.
    """
    if num_servers < 1:
        raise ValueError("need at least one server")
    n = num_servers
    demand = io_demand_per_server_mbps
    # Each disk serves: its job's local fraction + the peer fraction of all
    # other jobs that maps onto it = demand/n + (n-1) * demand/n = demand.
    disk_limited = local_disk_mbps
    # NIC carries the peer fraction of this server's own reads.
    peer_fraction = (n - 1) / n
    nic_limited = fabric_mbps / peer_fraction if peer_fraction > 0 else float("inf")
    per_server = min(demand, disk_limited, nic_limited)
    return per_server * n


def local_read_throughput(
    num_servers: int,
    io_demand_per_server_mbps: float,
    local_disk_mbps: float = 2000.0,
) -> float:
    """Aggregate throughput if every job read only from its local disk."""
    if num_servers < 1:
        raise ValueError("need at least one server")
    per_server = min(io_demand_per_server_mbps, local_disk_mbps)
    return per_server * num_servers


def peer_read_scaling_series(
    server_counts: List[int],
    io_demand_per_server_mbps: float = 1923.0,
    local_disk_mbps: float = 2000.0,
    fabric_mbps: float = 12500.0,
) -> List[dict]:
    """Figure 3 as a data series: linear / local / peer throughput in GB/s."""
    rows = []
    for n in server_counts:
        rows.append(
            {
                "servers": n,
                "linear_gbps": units.mb_to_gb(
                    n * io_demand_per_server_mbps
                ),
                "local_read_gbps": units.mb_to_gb(
                    local_read_throughput(
                        n, io_demand_per_server_mbps, local_disk_mbps
                    )
                ),
                "peer_read_gbps": units.mb_to_gb(
                    peer_read_throughput(
                        n,
                        io_demand_per_server_mbps,
                        local_disk_mbps,
                        fabric_mbps,
                    )
                ),
            }
        )
    return rows
