"""Cluster substrate: hardware, storage, datasets, jobs."""

from repro.cluster.dataset import Dataset, DatasetRegistry
from repro.cluster.hardware import (
    Cluster,
    GpuSpec,
    Server,
    cluster_96gpu,
    cluster_400gpu,
    microbenchmark_cluster,
)
from repro.cluster.job import Job, JobPhase, JobProgress
from repro.cluster.storage import RemoteStorage, peer_read_throughput

__all__ = [
    "Dataset",
    "DatasetRegistry",
    "Cluster",
    "GpuSpec",
    "Server",
    "Job",
    "JobPhase",
    "JobProgress",
    "RemoteStorage",
    "peer_read_throughput",
    "microbenchmark_cluster",
    "cluster_96gpu",
    "cluster_400gpu",
]
