"""GPU generations, servers, and cluster topology.

This module records the hardware facts the paper relies on:

* Figure 1's trend of GPU single-precision TFLOPS vs. cloud-storage egress
  bandwidth limits (the motivation: compute grew 125x in seven years while
  egress limits grew 12x).
* Table 2's measured training speed and IO demand of ResNet-50 per GPU type.
* The server/cluster model used by both simulators: servers contribute GPUs
  and local-disk cache capacity to a shared pool reachable over a storage
  fabric (Figure 3 shows peer reads run at near-local speed).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro import units


@dataclasses.dataclass(frozen=True)
class GpuSpec:
    """A GPU generation.

    ``fp32_tflops`` is the Figure 1 *plotted* throughput — NVIDIA's
    headline number for the part, which for H100 is the with-sparsity
    TF32 figure (~500 TFLOPS), not dense fp32. ``dense_fp32_tflops``
    records the dense single-precision value when it differs; speedup
    modelling (``repro.core.perf_model.default_speedup_table``) always
    uses the dense value so generations are compared like for like.
    ``release_year`` places the part on the trend line.
    """

    name: str
    fp32_tflops: float
    release_year: int
    dense_fp32_tflops: Optional[float] = None

    @property
    def dense_tflops(self) -> float:
        """Dense fp32 TFLOPS — falls back to the plotted value."""
        if self.dense_fp32_tflops is not None:
            return self.dense_fp32_tflops
        return self.fp32_tflops


#: Figure 1's GPU generations. ``fp32_tflops`` follows the numbers the
#: figure plots: published single-precision throughput for K80-A100, and
#: for H100 the with-sparsity TF32 headline (~500 TFLOPS) — the figure's
#: point is the *marketed* compute trend vs. egress limits. H100's dense
#: fp32 value (67 TFLOPS) is recorded alongside so the speedup model
#: does not inherit the sparsity inflation.
GPU_GENERATIONS: Dict[str, GpuSpec] = {
    "K80": GpuSpec("K80", 4.1, 2015),
    "P100": GpuSpec("P100", 9.3, 2016),
    "V100": GpuSpec("V100", 14.0, 2017),
    "A100": GpuSpec("A100", 19.5, 2020),
    # 510 = with sparsity, per Fig 1's ~500 point; 67 = dense fp32.
    "H100": GpuSpec("H100", 510.0, 2022, dense_fp32_tflops=67.0),
}


#: Figure 1's Azure storage-account egress bandwidth limits (Gbps) by year.
#: The paper reports a 12x increase across the same window, ending at
#: 120 Gbps ("the claimed upper-bound" used in Figure 2).
EGRESS_LIMIT_GBPS_BY_YEAR: Dict[int, float] = {
    2015: 10.0,
    2016: 15.0,
    2017: 20.0,
    2018: 30.0,
    2019: 50.0,
    2020: 60.0,
    2021: 100.0,
    2022: 120.0,
}


@dataclasses.dataclass(frozen=True)
class ResNet50Profile:
    """Table 2: ResNet-50 on ImageNet, mixed precision, per GPU setup."""

    gpu_setup: str
    images_per_second: float
    io_mb_per_second: float


#: Table 2 of the paper.
RESNET50_TABLE2: List[ResNet50Profile] = [
    ResNet50Profile("1xV100", 1003.0, 114.0),
    ResNet50Profile("1xA100", 2930.0, 333.0),
    ResNet50Profile("8xV100", 7813.0, 888.0),
    ResNet50Profile("8xA100", 16925.0, 1923.0),
    ResNet50Profile("1xGaudi2", 5325.0, 614.0),
]


#: Azure's local SSD available per V100 GPU for job-private caching, used by
#: the CoorDL baseline (§7: "368GB per V100 in Azure").
LOCAL_CACHE_MB_PER_V100 = units.gb(368.0)


@dataclasses.dataclass
class Server:
    """A GPU server contributing compute and cache to the cluster.

    Attributes
    ----------
    server_id:
        Index within the cluster.
    num_gpus:
        GPUs on this server.
    local_cache_mb:
        Local disk (SSD) capacity contributed to the distributed cache pool.
    local_disk_bandwidth_mbps:
        Sequential read throughput of the local disks.
    fabric_bandwidth_mbps:
        Per-server NIC bandwidth on the storage fabric used for peer reads.
    """

    server_id: int
    num_gpus: int
    local_cache_mb: float
    local_disk_bandwidth_mbps: float = 2000.0
    fabric_bandwidth_mbps: float = 12500.0  # 100 Gbps storage fabric
    #: GPU generation installed on this server (mixed fleets vary it).
    gpu: GpuSpec = GPU_GENERATIONS["V100"]


@dataclasses.dataclass
class Cluster:
    """A GPU cluster: servers plus a remote-IO egress limit.

    The two simulators treat the cluster's aggregate cache as one pool
    (Figure 3 justifies this: the storage fabric makes peer reads as fast as
    local reads), so most code only needs :meth:`total_gpus` and
    :meth:`total_cache_mb`. Mixed-generation fleets (:meth:`build_mixed`)
    additionally expose :meth:`gpus_by_generation` so heterogeneity-aware
    policies can treat each generation as a GPU pool; ``gpu`` then names
    the *reference* generation (the one jobs are profiled on, speedup 1.0).
    """

    servers: List[Server]
    remote_io_mbps: float
    gpu: GpuSpec = GPU_GENERATIONS["V100"]

    @classmethod
    def build(
        cls,
        num_servers: int,
        gpus_per_server: int,
        cache_per_server_mb: float,
        remote_io_mbps: float,
        gpu: GpuSpec = GPU_GENERATIONS["V100"],
    ) -> "Cluster":
        """Construct a homogeneous cluster."""
        servers = [
            Server(
                server_id=i,
                num_gpus=gpus_per_server,
                local_cache_mb=cache_per_server_mb,
                gpu=gpu,
            )
            for i in range(num_servers)
        ]
        return cls(servers=servers, remote_io_mbps=remote_io_mbps, gpu=gpu)

    @classmethod
    def build_mixed(
        cls,
        mix: Sequence[Tuple[str, int]],
        gpus_per_server: int,
        cache_per_server_mb: float,
        remote_io_mbps: float,
        reference: Optional[str] = None,
    ) -> "Cluster":
        """Construct a mixed-generation cluster.

        ``mix`` is a sequence of ``(generation_name, num_servers)``
        pairs (see :func:`parse_gpu_mix`). ``reference`` picks the
        generation recorded as ``cluster.gpu`` — the speedup-1.0 anchor;
        by default the generation contributing the most GPUs wins, ties
        broken by earliest release year, so a single-entry mix collapses
        exactly to :meth:`build` of that generation.
        """
        if not mix:
            raise ValueError("gpu mix must name at least one generation")
        servers: List[Server] = []
        counts: Dict[str, int] = {}
        for name, num_servers in mix:
            if name not in GPU_GENERATIONS:
                raise ValueError(f"unknown GPU generation {name!r}")
            if num_servers < 1:
                raise ValueError(f"need >= 1 server of {name!r}")
            counts[name] = counts.get(name, 0) + num_servers * gpus_per_server
            for _ in range(num_servers):
                servers.append(
                    Server(
                        server_id=len(servers),
                        num_gpus=gpus_per_server,
                        local_cache_mb=cache_per_server_mb,
                        gpu=GPU_GENERATIONS[name],
                    )
                )
        if reference is None:
            reference = max(
                counts,
                key=lambda n: (
                    counts[n],
                    -GPU_GENERATIONS[n].release_year,
                ),
            )
        if reference not in GPU_GENERATIONS:
            raise ValueError(f"unknown GPU generation {reference!r}")
        return cls(
            servers=servers,
            remote_io_mbps=remote_io_mbps,
            gpu=GPU_GENERATIONS[reference],
        )

    @property
    def total_gpus(self) -> int:
        """Number of GPUs across all servers."""
        return sum(s.num_gpus for s in self.servers)

    @property
    def total_cache_mb(self) -> float:
        """Aggregate distributed-cache capacity in MB."""
        return sum(s.local_cache_mb for s in self.servers)

    @property
    def gpus_by_generation(self) -> Dict[str, int]:
        """GPU count per generation, keyed by name, in release order."""
        counts: Dict[str, int] = {}
        for server in self.servers:
            counts[server.gpu.name] = (
                counts.get(server.gpu.name, 0) + server.num_gpus
            )
        return {
            name: counts[name]
            for name in sorted(
                counts, key=lambda n: GPU_GENERATIONS[n].release_year
            )
        }

    @property
    def generations(self) -> List[str]:
        """Generation names present, oldest first."""
        return list(self.gpus_by_generation)

    @property
    def is_heterogeneous(self) -> bool:
        """Whether the fleet mixes GPU generations."""
        return len(self.gpus_by_generation) > 1


def parse_gpu_mix(spec: str) -> List[Tuple[str, int]]:
    """Parse a ``--gpu-mix`` spec like ``"V100:2,A100:1"``.

    Each entry is ``GENERATION:NUM_SERVERS``; the result feeds
    :meth:`Cluster.build_mixed`. Raises ``ValueError`` on unknown
    generations, malformed entries, or non-positive counts.
    """
    mix: List[Tuple[str, int]] = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        name, sep, count = entry.partition(":")
        name = name.strip()
        if not sep:
            raise ValueError(
                f"bad --gpu-mix entry {entry!r} (want GEN:NUM_SERVERS)"
            )
        if name not in GPU_GENERATIONS:
            raise ValueError(f"unknown GPU generation {name!r}")
        try:
            num = int(count)
        except ValueError:
            raise ValueError(
                f"bad server count {count!r} in --gpu-mix entry {entry!r}"
            )
        if num < 1:
            raise ValueError(f"need >= 1 server of {name!r}")
        mix.append((name, num))
    if not mix:
        raise ValueError("gpu mix must name at least one generation")
    return mix


#: Table 5: remote IO limits used in the paper's evaluation, scaled down
#: from the ~1900-V100 production cluster's 120 Gbps.
REMOTE_IO_LIMITS_TABLE5: Dict[str, float] = {
    "8xV100": units.gbps(1.6),
    "96xK80": units.gbps(8.0),
    "400xV100": units.gbps(32.0),
    "production": units.gbps(120.0),
}


def microbenchmark_cluster() -> Cluster:
    """The 8-V100 micro-benchmark cluster (§7.1.1).

    Two 4-V100 VMs, each with 1 TB SSD cache, 1.6 Gbps (200 MB/s) remote IO.
    """
    return Cluster.build(
        num_servers=2,
        gpus_per_server=4,
        cache_per_server_mb=units.tb(1.0),
        remote_io_mbps=REMOTE_IO_LIMITS_TABLE5["8xV100"],
    )


def cluster_96gpu(cache_per_gpu_mb: float = LOCAL_CACHE_MB_PER_V100) -> Cluster:
    """The 96-GPU cluster (§7.1.2): 12 8-GPU servers, 8 Gbps remote IO."""
    return Cluster.build(
        num_servers=12,
        gpus_per_server=8,
        cache_per_server_mb=8 * cache_per_gpu_mb,
        remote_io_mbps=REMOTE_IO_LIMITS_TABLE5["96xK80"],
    )


def cluster_400gpu(cache_per_gpu_mb: float = LOCAL_CACHE_MB_PER_V100) -> Cluster:
    """The 400-GPU simulated cluster (§7.2): 50 8-GPU servers, 32 Gbps."""
    return Cluster.build(
        num_servers=50,
        gpus_per_server=8,
        cache_per_server_mb=8 * cache_per_gpu_mb,
        remote_io_mbps=REMOTE_IO_LIMITS_TABLE5["400xV100"],
    )


def gpu_trend_series() -> List[dict]:
    """Figure 1 as a data series: year, TFLOPS (if a GPU shipped), egress.

    Plots ``fp32_tflops`` — the headline value per generation, which for
    H100 is the *with-sparsity* ~500 TFLOPS point Figure 1 shows, not
    the dense fp32 value (see :data:`GPU_GENERATIONS`).
    """
    rows = []
    by_year = {g.release_year: g for g in GPU_GENERATIONS.values()}
    for year in sorted(EGRESS_LIMIT_GBPS_BY_YEAR):
        gpu = by_year.get(year)
        rows.append(
            {
                "year": year,
                "gpu": gpu.name if gpu else None,
                "fp32_tflops": gpu.fp32_tflops if gpu else None,
                "egress_gbps": EGRESS_LIMIT_GBPS_BY_YEAR[year],
            }
        )
    return rows


def compute_growth_vs_egress_growth() -> tuple:
    """Return (gpu_speedup, egress_growth) across Figure 1's window.

    The paper quotes 125x vs 12x. The GPU growth uses the *plotted*
    (headline) TFLOPS values — so the H100 endpoint is the with-sparsity
    510, matching the figure; the dense-fp32 growth would be ~16x.
    """
    specs = sorted(GPU_GENERATIONS.values(), key=lambda g: g.release_year)
    gpu_growth = specs[-1].fp32_tflops / specs[0].fp32_tflops
    years: Sequence[int] = sorted(EGRESS_LIMIT_GBPS_BY_YEAR)
    egress_growth = (
        EGRESS_LIMIT_GBPS_BY_YEAR[years[-1]] / EGRESS_LIMIT_GBPS_BY_YEAR[years[0]]
    )
    return gpu_growth, egress_growth
