"""GPU generations, servers, and cluster topology.

This module records the hardware facts the paper relies on:

* Figure 1's trend of GPU single-precision TFLOPS vs. cloud-storage egress
  bandwidth limits (the motivation: compute grew 125x in seven years while
  egress limits grew 12x).
* Table 2's measured training speed and IO demand of ResNet-50 per GPU type.
* The server/cluster model used by both simulators: servers contribute GPUs
  and local-disk cache capacity to a shared pool reachable over a storage
  fabric (Figure 3 shows peer reads run at near-local speed).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

from repro import units


@dataclasses.dataclass(frozen=True)
class GpuSpec:
    """A GPU generation.

    ``fp32_tflops`` is single-precision throughput (Figure 1);
    ``release_year`` places it on the trend line.
    """

    name: str
    fp32_tflops: float
    release_year: int


#: Figure 1's GPU generations. TFLOPS values follow NVIDIA's published
#: single-precision numbers for the data-center parts the figure plots.
GPU_GENERATIONS: Dict[str, GpuSpec] = {
    "K80": GpuSpec("K80", 4.1, 2015),
    "P100": GpuSpec("P100", 9.3, 2016),
    "V100": GpuSpec("V100", 14.0, 2017),
    "A100": GpuSpec("A100", 19.5, 2020),
    "H100": GpuSpec("H100", 510.0, 2022),  # with sparsity, per Fig 1's ~500 point
}


#: Figure 1's Azure storage-account egress bandwidth limits (Gbps) by year.
#: The paper reports a 12x increase across the same window, ending at
#: 120 Gbps ("the claimed upper-bound" used in Figure 2).
EGRESS_LIMIT_GBPS_BY_YEAR: Dict[int, float] = {
    2015: 10.0,
    2016: 15.0,
    2017: 20.0,
    2018: 30.0,
    2019: 50.0,
    2020: 60.0,
    2021: 100.0,
    2022: 120.0,
}


@dataclasses.dataclass(frozen=True)
class ResNet50Profile:
    """Table 2: ResNet-50 on ImageNet, mixed precision, per GPU setup."""

    gpu_setup: str
    images_per_second: float
    io_mb_per_second: float


#: Table 2 of the paper.
RESNET50_TABLE2: List[ResNet50Profile] = [
    ResNet50Profile("1xV100", 1003.0, 114.0),
    ResNet50Profile("1xA100", 2930.0, 333.0),
    ResNet50Profile("8xV100", 7813.0, 888.0),
    ResNet50Profile("8xA100", 16925.0, 1923.0),
    ResNet50Profile("1xGaudi2", 5325.0, 614.0),
]


#: Azure's local SSD available per V100 GPU for job-private caching, used by
#: the CoorDL baseline (§7: "368GB per V100 in Azure").
LOCAL_CACHE_MB_PER_V100 = units.gb(368.0)


@dataclasses.dataclass
class Server:
    """A GPU server contributing compute and cache to the cluster.

    Attributes
    ----------
    server_id:
        Index within the cluster.
    num_gpus:
        GPUs on this server.
    local_cache_mb:
        Local disk (SSD) capacity contributed to the distributed cache pool.
    local_disk_bandwidth_mbps:
        Sequential read throughput of the local disks.
    fabric_bandwidth_mbps:
        Per-server NIC bandwidth on the storage fabric used for peer reads.
    """

    server_id: int
    num_gpus: int
    local_cache_mb: float
    local_disk_bandwidth_mbps: float = 2000.0
    fabric_bandwidth_mbps: float = 12500.0  # 100 Gbps storage fabric


@dataclasses.dataclass
class Cluster:
    """A homogeneous GPU cluster: servers plus a remote-IO egress limit.

    The two simulators treat the cluster's aggregate cache as one pool
    (Figure 3 justifies this: the storage fabric makes peer reads as fast as
    local reads), so most code only needs :meth:`total_gpus` and
    :meth:`total_cache_mb`.
    """

    servers: List[Server]
    remote_io_mbps: float
    gpu: GpuSpec = GPU_GENERATIONS["V100"]

    @classmethod
    def build(
        cls,
        num_servers: int,
        gpus_per_server: int,
        cache_per_server_mb: float,
        remote_io_mbps: float,
        gpu: GpuSpec = GPU_GENERATIONS["V100"],
    ) -> "Cluster":
        """Construct a homogeneous cluster."""
        servers = [
            Server(
                server_id=i,
                num_gpus=gpus_per_server,
                local_cache_mb=cache_per_server_mb,
            )
            for i in range(num_servers)
        ]
        return cls(servers=servers, remote_io_mbps=remote_io_mbps, gpu=gpu)

    @property
    def total_gpus(self) -> int:
        """Number of GPUs across all servers."""
        return sum(s.num_gpus for s in self.servers)

    @property
    def total_cache_mb(self) -> float:
        """Aggregate distributed-cache capacity in MB."""
        return sum(s.local_cache_mb for s in self.servers)


#: Table 5: remote IO limits used in the paper's evaluation, scaled down
#: from the ~1900-V100 production cluster's 120 Gbps.
REMOTE_IO_LIMITS_TABLE5: Dict[str, float] = {
    "8xV100": units.gbps(1.6),
    "96xK80": units.gbps(8.0),
    "400xV100": units.gbps(32.0),
    "production": units.gbps(120.0),
}


def microbenchmark_cluster() -> Cluster:
    """The 8-V100 micro-benchmark cluster (§7.1.1).

    Two 4-V100 VMs, each with 1 TB SSD cache, 1.6 Gbps (200 MB/s) remote IO.
    """
    return Cluster.build(
        num_servers=2,
        gpus_per_server=4,
        cache_per_server_mb=units.tb(1.0),
        remote_io_mbps=REMOTE_IO_LIMITS_TABLE5["8xV100"],
    )


def cluster_96gpu(cache_per_gpu_mb: float = LOCAL_CACHE_MB_PER_V100) -> Cluster:
    """The 96-GPU cluster (§7.1.2): 12 8-GPU servers, 8 Gbps remote IO."""
    return Cluster.build(
        num_servers=12,
        gpus_per_server=8,
        cache_per_server_mb=8 * cache_per_gpu_mb,
        remote_io_mbps=REMOTE_IO_LIMITS_TABLE5["96xK80"],
    )


def cluster_400gpu(cache_per_gpu_mb: float = LOCAL_CACHE_MB_PER_V100) -> Cluster:
    """The 400-GPU simulated cluster (§7.2): 50 8-GPU servers, 32 Gbps."""
    return Cluster.build(
        num_servers=50,
        gpus_per_server=8,
        cache_per_server_mb=8 * cache_per_gpu_mb,
        remote_io_mbps=REMOTE_IO_LIMITS_TABLE5["400xV100"],
    )


def gpu_trend_series() -> List[dict]:
    """Figure 1 as a data series: year, TFLOPS (if a GPU shipped), egress."""
    rows = []
    by_year = {g.release_year: g for g in GPU_GENERATIONS.values()}
    for year in sorted(EGRESS_LIMIT_GBPS_BY_YEAR):
        gpu = by_year.get(year)
        rows.append(
            {
                "year": year,
                "gpu": gpu.name if gpu else None,
                "fp32_tflops": gpu.fp32_tflops if gpu else None,
                "egress_gbps": EGRESS_LIMIT_GBPS_BY_YEAR[year],
            }
        )
    return rows


def compute_growth_vs_egress_growth() -> tuple:
    """Return (gpu_speedup, egress_growth) across Figure 1's window.

    The paper quotes 125x vs 12x.
    """
    specs = sorted(GPU_GENERATIONS.values(), key=lambda g: g.release_year)
    gpu_growth = specs[-1].fp32_tflops / specs[0].fp32_tflops
    years: Sequence[int] = sorted(EGRESS_LIMIT_GBPS_BY_YEAR)
    egress_growth = (
        EGRESS_LIMIT_GBPS_BY_YEAR[years[-1]] / EGRESS_LIMIT_GBPS_BY_YEAR[years[0]]
    )
    return gpu_growth, egress_growth
